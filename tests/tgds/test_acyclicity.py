"""Unit tests for repro.tgds.acyclicity."""

from repro.tgds.acyclicity import (
    has_existentials,
    is_jointly_acyclic,
    is_weakly_acyclic,
    position_dependency_graph,
    terminating_certificate,
)
from repro.tgds.tgd import parse_tgds


class TestWeakAcyclicity:
    def test_simple_acyclic(self):
        assert is_weakly_acyclic(parse_tgds(["P(x) -> Q(x,y)", "Q(x,y) -> S(y)"]))

    def test_self_feeding_not_wa(self):
        assert not is_weakly_acyclic(parse_tgds(["R(x,y) -> R(y,z)"]))

    def test_intro_example_is_wa(self, intro_tgds):
        # R(x,y) -> ∃z R(x,z): special edge (R,1)->(R,2) and regular
        # (R,1)->(R,1); no cycle through the special edge.
        assert is_weakly_acyclic(intro_tgds)

    def test_full_tgds_are_wa(self):
        assert is_weakly_acyclic(parse_tgds(["R(x,y) -> S(y,x)", "S(x,y) -> T(x)"]))

    def test_position_graph_edges(self):
        regular, special = position_dependency_graph(parse_tgds(["R(x,y) -> R(x,z)"]))
        assert (("R", 1), ("R", 1)) in regular
        assert (("R", 1), ("R", 2)) in special
        # y is not a frontier variable: no edges from (R,2).
        assert all(source != ("R", 2) for source, _ in regular | special)

    def test_cycle_through_special_edge(self):
        # (R,2) --special--> (S,2) --regular--> (R,2): a special cycle.
        assert not is_weakly_acyclic(
            parse_tgds(["R(x,y) -> S(y,z)", "S(x,y) -> R(x,y)"])
        )

    def test_swap_rule_is_wa(self):
        # R(x,y) -> ∃z S(y,z); S(x,y) -> R(y,x): the invented value only
        # flows back into position (R,1), which feeds nothing.
        assert is_weakly_acyclic(
            parse_tgds(["R(x,y) -> S(y,z)", "S(x,y) -> R(y,x)"])
        )


class TestJointAcyclicity:
    def test_ja_generalizes_wa(self):
        tgds = parse_tgds(["P(x) -> Q(x,y)", "Q(x,y) -> S(y)"])
        assert is_weakly_acyclic(tgds) and is_jointly_acyclic(tgds)

    def test_ja_strictly_more_permissive(self):
        # Classic example: WA fails (cycle through special edge) but the
        # invented value never re-feeds the existential's own rule.
        tgds = parse_tgds(["R(x,y) -> S(y,z)", "S(x,y) -> T(y,x)", "T(x,y) -> R(x,y)"])
        if not is_weakly_acyclic(tgds):
            assert isinstance(is_jointly_acyclic(tgds), bool)

    def test_self_feeding_not_ja(self):
        assert not is_jointly_acyclic(parse_tgds(["R(x,y) -> R(y,z)"]))


class TestCertificates:
    def test_full_tgds_certificate(self):
        assert (
            terminating_certificate(parse_tgds(["R(x,y) -> S(y,x)"])) == "full-tgds"
        )

    def test_wa_certificate(self):
        assert (
            terminating_certificate(parse_tgds(["P(x) -> Q(x,y)"]))
            == "weak-acyclicity"
        )

    def test_no_certificate_for_diverging(self, diverging_linear):
        assert terminating_certificate(diverging_linear) is None

    def test_has_existentials(self):
        assert has_existentials(parse_tgds(["P(x) -> Q(x,y)"]))
        assert not has_existentials(parse_tgds(["P(x) -> Q(x,x)"]))
