"""Tests for instance cores."""

from repro.core.cores import core_of, is_core, proper_retraction, redundancy
from repro.core.homomorphism import are_isomorphic
from repro.core.parsing import parse_instance


class TestCores:
    def test_fact_instance_is_core(self):
        instance = parse_instance("R(a,b), S(b,c)")
        assert is_core(instance)
        assert core_of(instance) == instance

    def test_redundant_null_folded(self):
        # R(a,?n) is subsumed by R(a,b).
        instance = parse_instance("R(a,b), R(a,?n)")
        core = core_of(instance)
        assert len(core) == 1
        assert core == parse_instance("R(a,b)")

    def test_null_chain_folds_onto_loop(self):
        # A null path alongside a constant loop retracts onto the loop.
        instance = parse_instance("E(a,a), E(a,?n1), E(?n1,?n2)")
        core = core_of(instance)
        assert core == parse_instance("E(a,a)")

    def test_non_redundant_nulls_kept(self):
        instance = parse_instance("R(a,?n)")
        assert is_core(instance)

    def test_core_is_idempotent(self):
        instance = parse_instance("R(a,b), R(a,?n), S(?n)")
        core = core_of(instance)
        assert core_of(core) == core

    def test_redundancy_count(self):
        instance = parse_instance("R(a,b), R(a,?n)")
        assert redundancy(instance) == 1
        assert redundancy(parse_instance("R(a,b)")) == 0

    def test_proper_retraction_none_on_core(self):
        assert proper_retraction(parse_instance("R(a,b)")) is None

    def test_core_unique_up_to_iso(self):
        left = core_of(parse_instance("R(a,?n1), R(a,?n2)"))
        right = core_of(parse_instance("R(a,?m)"))
        assert are_isomorphic(left.atoms(), right.atoms())


class TestCoresOfChaseResults:
    def test_oblivious_chase_has_redundancy_restricted_does_not(self):
        """On the X11 workload the oblivious chase's extra nulls are folded
        away by the core — they were redundant; the restricted chase's
        output is already (close to) the core."""
        from repro.chase.oblivious import oblivious_chase
        from repro.chase.restricted import restricted_chase
        from repro.core.parsing import parse_database
        from repro.tgds.tgd import parse_tgds

        tgds = parse_tgds(["E(x,y) -> G(y,w)"])
        db = parse_database("E(a,b), G(b,b)")
        restricted = restricted_chase(db, tgds)
        oblivious = oblivious_chase(db, tgds)
        assert redundancy(restricted.instance) == 0
        assert redundancy(oblivious.instance) == 1
        assert are_isomorphic(
            core_of(oblivious.instance).atoms(), restricted.instance.atoms()
        )
