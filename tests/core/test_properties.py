"""Property-based tests for the core substrate (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.atoms import Atom
from repro.core.equality import EqualityType
from repro.core.homomorphism import (
    homomorphisms,
    is_homomorphism,
    match_atom,
)
from repro.core.instance import Instance
from repro.core.substitution import Substitution
from repro.core.terms import Constant, Null, Variable

constants = st.builds(Constant, st.sampled_from("abcde"))
nulls = st.builds(Null, st.sampled_from(["n1", "n2", "n3"]))
variables = st.builds(Variable, st.sampled_from("xyzuv"))
ground_terms = st.one_of(constants, nulls)
any_terms = st.one_of(constants, nulls, variables)

predicates = st.sampled_from(["R", "S", "T"])


@st.composite
def ground_atoms(draw, max_arity=3):
    pred = draw(predicates)
    arity = draw(st.integers(1, max_arity))
    return Atom(pred, [draw(ground_terms) for _ in range(arity)])


@st.composite
def pattern_atoms(draw, max_arity=3):
    pred = draw(predicates)
    arity = draw(st.integers(1, max_arity))
    return Atom(pred, [draw(any_terms) for _ in range(arity)])


@st.composite
def ground_instances(draw, max_atoms=6):
    return Instance(draw(st.lists(ground_atoms(), max_size=max_atoms)))


class TestHomomorphismProperties:
    @given(pattern_atoms(), ground_atoms())
    def test_match_atom_is_sound(self, pattern, target):
        binding = match_atom(pattern, target)
        if binding is not None:
            assert pattern.apply(binding) == target

    @given(st.lists(pattern_atoms(), max_size=3), ground_instances())
    @settings(max_examples=60)
    def test_generated_homs_are_homomorphisms(self, source, instance):
        for h in homomorphisms(source, instance):
            assert is_homomorphism(h, source, instance)

    @given(st.lists(pattern_atoms(), max_size=3), ground_instances())
    @settings(max_examples=40)
    def test_homs_are_distinct(self, source, instance):
        found = [tuple(sorted(h.items(), key=repr)) for h in homomorphisms(source, instance)]
        assert len(found) == len(set(found))

    @given(ground_instances())
    def test_identity_endomorphism(self, instance):
        atoms = instance.sorted_atoms()
        assert is_homomorphism({}, atoms, instance)


class TestEqualityTypeProperties:
    @given(ground_atoms())
    def test_canonical_atom_same_type(self, atom):
        et = EqualityType.of_atom(atom)
        assert EqualityType.of_atom(et.canonical_atom()) == et

    @given(ground_atoms())
    def test_type_reflects_equalities(self, atom):
        et = EqualityType.of_atom(atom)
        for i in range(1, atom.arity + 1):
            for j in range(1, atom.arity + 1):
                assert et.same(i, j) == (atom[i] == atom[j])

    @given(ground_atoms())
    def test_canonical_atom_stops_itself(self, atom):
        # Two copies of the same atom always stop each other (Section 3.1):
        # the identity homomorphism fixes everything.
        from repro.chase.relations import stops_atom

        assert stops_atom(atom, atom, frozenset(atom.terms))


class TestSubstitutionProperties:
    @given(st.dictionaries(variables, ground_terms, max_size=4), pattern_atoms())
    def test_apply_then_apply_composes(self, mapping, atom):
        s = Substitution(mapping)
        t = Substitution({})
        once = s.apply_to_atom(atom)
        assert s.compose(t).apply_to_atom(atom) == once

    @given(
        st.dictionaries(variables, nulls, max_size=3),
        st.dictionaries(nulls, constants, max_size=3),
        pattern_atoms(),
    )
    def test_composition_agrees_pointwise(self, first, second, atom):
        s1, s2 = Substitution(first), Substitution(second)
        composed = s1.compose(s2)
        direct = s2.apply_to_atom(s1.apply_to_atom(atom))
        assert composed.apply_to_atom(atom) == direct

    @given(st.dictionaries(variables, ground_terms, max_size=4))
    def test_restrict_is_subset(self, mapping):
        s = Substitution(mapping)
        keys = list(mapping)[:2]
        restricted = s.restrict(keys)
        assert restricted.domain() <= s.domain()
        assert all(restricted[k] == s[k] for k in restricted)

    @given(st.dictionaries(variables, ground_terms, min_size=1, max_size=4))
    def test_inverse_roundtrip_when_injective(self, mapping):
        s = Substitution(mapping)
        if s.is_injective():
            assert s.inverse().inverse() == s
