"""Unit tests for repro.core.parsing."""

import pytest

from repro.core.atoms import Atom
from repro.core.parsing import (
    ParseError,
    parse_atom,
    parse_atoms,
    parse_database,
    parse_instance,
    parse_query_parts,
    parse_rule_parts,
)
from repro.core.terms import Constant, Null, Variable


class TestAtomParsing:
    def test_rule_atom_variables(self):
        assert parse_atom("R(x,y)") == Atom("R", [Variable("x"), Variable("y")])

    def test_data_atom_constants(self):
        assert parse_atom("R(a,b)", data=True) == Atom(
            "R", [Constant("a"), Constant("b")]
        )

    def test_numeric_constants(self):
        assert parse_atom("R(1,2)", data=True) == Atom(
            "R", [Constant("1"), Constant("2")]
        )

    def test_nulls_in_data(self):
        assert parse_atom("R(?n)", data=True) == Atom("R", [Null("n")])

    def test_nulls_rejected_in_rules(self):
        with pytest.raises(ParseError):
            parse_atom("R(?n)")

    def test_whitespace_insensitive(self):
        assert parse_atom(" R ( x , y ) ") == parse_atom("R(x,y)")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_atom("R(x) extra")

    def test_malformed(self):
        for bad in ["R(", "R)", "(x)", "R(x", "R(x,)"]:
            with pytest.raises(ParseError):
                parse_atom(bad)


class TestAtomListParsing:
    def test_comma_separated(self):
        atoms = parse_atoms("R(x,y), S(y)")
        assert len(atoms) == 2

    def test_iterable_of_strings(self):
        atoms = parse_atoms(["R(x,y)", "S(y)"])
        assert len(atoms) == 2

    def test_databases(self):
        db = parse_database("R(a,b), S(b)")
        assert len(db) == 2
        assert db.is_database()

    def test_instances_allow_nulls(self):
        inst = parse_instance("R(a,?n)")
        assert inst.nulls() == {Null("n")}


class TestRuleParsing:
    def test_basic_rule(self):
        body, head = parse_rule_parts("R(x,y), P(y,z) -> T(x,y,w)")
        assert len(body) == 2 and len(head) == 1

    def test_unicode_arrow(self):
        body, head = parse_rule_parts("R(x,y) → S(y)")
        assert len(body) == 1

    def test_multi_head(self):
        _, head = parse_rule_parts("R(x,y) -> S(x), S(y)")
        assert len(head) == 2

    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_rule_parts("R(x,y), S(y)")


class TestQueryParsing:
    def test_basic_query(self):
        name, answer_vars, body = parse_query_parts("Q(x) :- R(x,y), S(y,x)")
        assert name == "Q"
        assert answer_vars == [Variable("x")]
        assert len(body) == 2

    def test_boolean_query_rejected_head_var(self):
        with pytest.raises(ParseError):
            parse_query_parts("Q(z) :- R(x,y)")
