"""Unit tests for repro.core.atoms."""

import pytest

from repro.core.atoms import Atom, positions_of_atom
from repro.core.terms import Constant, Null, Variable


def atom(*names):
    return Atom("R", [Constant(n) for n in names])


class TestConstruction:
    def test_basic(self):
        a = atom("a", "b")
        assert a.predicate == "R"
        assert a.arity == 2

    def test_empty_predicate_rejected(self):
        with pytest.raises(ValueError):
            Atom("", [Constant("a")])

    def test_non_term_rejected(self):
        with pytest.raises(TypeError):
            Atom("R", ["a"])  # type: ignore[list-item]

    def test_immutable(self):
        a = atom("a")
        with pytest.raises(AttributeError):
            a.predicate = "S"  # type: ignore[misc]


class TestIndexing:
    def test_one_based_getitem(self):
        a = atom("a", "b")
        assert a[1] == Constant("a")
        assert a[2] == Constant("b")

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            atom("a")[2]
        with pytest.raises(IndexError):
            atom("a")[0]

    def test_positions_of(self):
        a = Atom("R", [Constant("a"), Constant("b"), Constant("a")])
        assert a.positions_of(Constant("a")) == frozenset({1, 3})
        assert a.positions_of(Constant("z")) == frozenset()

    def test_positions_of_atom_helper(self):
        assert positions_of_atom(atom("a", "b")) == [("R", 1), ("R", 2)]


class TestKinds:
    def test_is_fact(self):
        assert atom("a").is_fact
        assert not Atom("R", [Null("n")]).is_fact

    def test_is_ground(self):
        assert Atom("R", [Null("n")]).is_ground
        assert not Atom("R", [Variable("x")]).is_ground

    def test_term_partitions(self):
        a = Atom("R", [Constant("a"), Null("n"), Variable("x")])
        assert a.constants() == {Constant("a")}
        assert a.nulls() == {Null("n")}
        assert a.variables() == {Variable("x")}
        assert a.term_set() == {Constant("a"), Null("n"), Variable("x")}


class TestApply:
    def test_apply_dict(self):
        a = Atom("R", [Variable("x"), Variable("y")])
        image = a.apply({Variable("x"): Constant("a")})
        assert image == Atom("R", [Constant("a"), Variable("y")])

    def test_apply_preserves_original(self):
        a = Atom("R", [Variable("x")])
        a.apply({Variable("x"): Constant("a")})
        assert a[1] == Variable("x")


class TestEqualityAndOrder:
    def test_structural_equality(self):
        assert atom("a", "b") == atom("a", "b")
        assert atom("a", "b") != atom("b", "a")
        assert atom("a") != Atom("S", [Constant("a")])

    def test_hashable(self):
        assert len({atom("a"), atom("a"), atom("b")}) == 2

    def test_sort_key_deterministic(self):
        atoms = [atom("b"), atom("a"), Atom("Q", [Constant("z")])]
        ordered = sorted(atoms)
        assert ordered[0].predicate == "Q"
        assert ordered[1] == atom("a")

    def test_repr(self):
        assert repr(atom("a", "b")) == "R(a,b)"
