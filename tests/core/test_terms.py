"""Unit tests for repro.core.terms."""

import pytest

from repro.core.terms import (
    Constant,
    FreshNullFactory,
    FreshVariableFactory,
    Null,
    Term,
    Variable,
    constants_of,
    nulls_of,
    variables_of,
)


class TestTermIdentity:
    def test_constants_equal_by_name(self):
        assert Constant("a") == Constant("a")

    def test_constants_differ_by_name(self):
        assert Constant("a") != Constant("b")

    def test_kinds_never_equal(self):
        assert Constant("a") != Null("a")
        assert Null("a") != Variable("a")
        assert Constant("a") != Variable("a")

    def test_hash_consistent_with_equality(self):
        assert hash(Constant("a")) == hash(Constant("a"))
        assert len({Constant("a"), Constant("a"), Null("a")}) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Constant("")

    def test_non_string_name_rejected(self):
        with pytest.raises(ValueError):
            Constant(3)  # type: ignore[arg-type]


class TestOrdering:
    def test_constants_before_nulls_before_variables(self):
        terms = [Variable("a"), Null("a"), Constant("a")]
        assert sorted(terms) == [Constant("a"), Null("a"), Variable("a")]

    def test_within_kind_by_name(self):
        assert Constant("a") < Constant("b")
        assert not Constant("b") < Constant("a")

    def test_total_order_operators(self):
        assert Constant("a") <= Constant("a")
        assert Null("z") > Constant("z")
        assert Variable("x") >= Null("x")

    def test_comparison_with_non_term(self):
        with pytest.raises(TypeError):
            _ = Constant("a") < 5


class TestKindPredicates:
    def test_is_constant(self):
        assert Constant("a").is_constant
        assert not Null("a").is_constant

    def test_is_null(self):
        assert Null("n").is_null
        assert not Variable("n").is_null

    def test_is_variable(self):
        assert Variable("x").is_variable
        assert not Constant("x").is_variable


class TestFactories:
    def test_fresh_nulls_distinct(self):
        factory = FreshNullFactory()
        assert factory.fresh() != factory.fresh()

    def test_fresh_many(self):
        factory = FreshNullFactory("m")
        batch = factory.fresh_many(5)
        assert len(set(batch)) == 5
        assert all(isinstance(n, Null) for n in batch)

    def test_fresh_variables(self):
        factory = FreshVariableFactory()
        v1, v2 = factory.fresh(), factory.fresh()
        assert v1 != v2
        assert v1.is_variable


class TestFilters:
    def test_partitioning_helpers(self):
        terms = [Constant("a"), Null("n"), Variable("x"), Constant("b")]
        assert constants_of(terms) == {Constant("a"), Constant("b")}
        assert nulls_of(terms) == {Null("n")}
        assert variables_of(terms) == {Variable("x")}

    def test_repr_distinguishes_kinds(self):
        assert repr(Constant("a")) == "a"
        assert repr(Null("n")) == "?n"
        assert repr(Variable("x")) == "x"
