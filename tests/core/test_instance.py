"""Unit tests for repro.core.instance."""

import pytest

from repro.core.atoms import Atom
from repro.core.instance import Database, Instance, MultisetInstance, Occurrence
from repro.core.terms import Constant, Null, Variable


def fact(*names, pred="R"):
    return Atom(pred, [Constant(n) for n in names])


class TestInstance:
    def test_add_and_contains(self):
        inst = Instance()
        assert inst.add(fact("a"))
        assert fact("a") in inst
        assert not inst.add(fact("a"))

    def test_variables_rejected(self):
        with pytest.raises(ValueError):
            Instance().add(Atom("R", [Variable("x")]))

    def test_non_atom_rejected(self):
        with pytest.raises(TypeError):
            Instance().add("R(a)")  # type: ignore[arg-type]

    def test_nulls_allowed(self):
        inst = Instance([Atom("R", [Null("n")])])
        assert len(inst) == 1

    def test_update_counts_new(self):
        inst = Instance([fact("a")])
        assert inst.update([fact("a"), fact("b")]) == 1

    def test_discard(self):
        inst = Instance([fact("a")])
        assert inst.discard(fact("a"))
        assert not inst.discard(fact("a"))
        assert fact("a") not in inst
        assert inst.with_predicate("R") == set()

    def test_predicate_index(self):
        inst = Instance([fact("a"), fact("b", pred="S")])
        assert inst.with_predicate("R") == {fact("a")}
        assert inst.with_predicate("T") == set()

    def test_domain(self):
        inst = Instance([fact("a", "b")])
        assert inst.domain() == {Constant("a"), Constant("b")}

    def test_constants_and_nulls(self):
        inst = Instance([Atom("R", [Constant("a"), Null("n")])])
        assert inst.constants() == {Constant("a")}
        assert inst.nulls() == {Null("n")}

    def test_copy_independent(self):
        inst = Instance([fact("a")])
        clone = inst.copy()
        clone.add(fact("b"))
        assert fact("b") not in inst

    def test_equality_with_set(self):
        assert Instance([fact("a")]) == {fact("a")}
        assert Instance([fact("a")]) == Instance([fact("a")])

    def test_sorted_atoms_deterministic(self):
        inst = Instance([fact("b"), fact("a")])
        assert inst.sorted_atoms() == [fact("a"), fact("b")]

    def test_schema(self):
        inst = Instance([fact("a", "b")])
        assert inst.schema().arity("R") == 2

    def test_is_database(self):
        assert Instance([fact("a")]).is_database()
        assert not Instance([Atom("R", [Null("n")])]).is_database()


class TestDatabase:
    def test_facts_only(self):
        db = Database([fact("a")])
        assert len(db) == 1

    def test_null_rejected(self):
        with pytest.raises(ValueError):
            Database([Atom("R", [Null("n")])])

    def test_copy_type(self):
        assert isinstance(Database([fact("a")]).copy(), Database)


class TestMultisetInstance:
    def test_occurrences_distinct_by_tag(self):
        ms = MultisetInstance()
        ms.add_atom(fact("a"), tag=1)
        ms.add_atom(fact("a"), tag=2)
        assert len(ms) == 2
        assert ms.multiplicity(fact("a")) == 2

    def test_same_tag_deduplicated(self):
        ms = MultisetInstance()
        ms.add_atom(fact("a"), tag=1)
        assert not ms.add_occurrence(Occurrence(fact("a"), 1))
        assert len(ms) == 1

    def test_atom_set_collapses(self):
        ms = MultisetInstance()
        ms.add_atom(fact("a"), 1)
        ms.add_atom(fact("a"), 2)
        assert ms.atom_set() == {fact("a")}
        assert len(ms.to_instance()) == 1

    def test_contains_atom_and_occurrence(self):
        ms = MultisetInstance()
        occ = ms.add_atom(fact("a"), 1)
        assert occ in ms
        assert fact("a") in ms
        assert fact("b") not in ms

    def test_predicate_index(self):
        ms = MultisetInstance()
        ms.add_atom(fact("a"), 1)
        ms.add_atom(fact("b", pred="S"), 2)
        assert len(ms.with_predicate("R")) == 1

    def test_copy_independent(self):
        ms = MultisetInstance()
        ms.add_atom(fact("a"), 1)
        clone = ms.copy()
        clone.add_atom(fact("b"), 2)
        assert len(ms) == 1

    def test_domain(self):
        ms = MultisetInstance()
        ms.add_atom(fact("a", "b"), 1)
        assert ms.domain() == {Constant("a"), Constant("b")}
