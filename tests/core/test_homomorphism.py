"""Unit tests for repro.core.homomorphism."""

import pytest

from repro.core.atoms import Atom
from repro.core.homomorphism import (
    are_isomorphic,
    find_homomorphism,
    has_homomorphism,
    homomorphisms,
    is_homomorphism,
    is_isomorphism,
    match_atom,
)
from repro.core.instance import Instance
from repro.core.terms import Constant, Null, Variable

X, Y, Z = Variable("x"), Variable("y"), Variable("z")
A, B, C = Constant("a"), Constant("b"), Constant("c")
N1, N2 = Null("n1"), Null("n2")


class TestMatchAtom:
    def test_simple_bind(self):
        binding = match_atom(Atom("R", [X, Y]), Atom("R", [A, B]))
        assert binding == {X: A, Y: B}

    def test_predicate_mismatch(self):
        assert match_atom(Atom("R", [X]), Atom("S", [A])) is None

    def test_arity_mismatch(self):
        assert match_atom(Atom("R", [X]), Atom("R", [A, B])) is None

    def test_repeated_variable_consistent(self):
        assert match_atom(Atom("R", [X, X]), Atom("R", [A, A])) == {X: A}
        assert match_atom(Atom("R", [X, X]), Atom("R", [A, B])) is None

    def test_constant_rigid(self):
        assert match_atom(Atom("R", [A]), Atom("R", [A])) == {}
        assert match_atom(Atom("R", [A]), Atom("R", [B])) is None

    def test_null_flexible_unless_frozen(self):
        assert match_atom(Atom("R", [N1]), Atom("R", [A])) == {N1: A}
        assert match_atom(Atom("R", [N1]), Atom("R", [A]), frozen=frozenset({N1})) is None
        assert match_atom(Atom("R", [N1]), Atom("R", [N1]), frozen=frozenset({N1})) == {}

    def test_partial_respected(self):
        assert match_atom(Atom("R", [X]), Atom("R", [A]), partial={X: B}) is None
        assert match_atom(Atom("R", [X]), Atom("R", [A]), partial={X: A}) == {X: A}

    def test_partial_not_mutated(self):
        partial = {X: A}
        match_atom(Atom("R", [X, Y]), Atom("R", [A, B]), partial=partial)
        assert partial == {X: A}


class TestHomomorphisms:
    def test_join_two_atoms(self):
        source = [Atom("R", [X, Y]), Atom("S", [Y, Z])]
        target = Instance([Atom("R", [A, B]), Atom("S", [B, C])])
        found = list(homomorphisms(source, target))
        assert found == [{X: A, Y: B, Z: C}]

    def test_no_hom(self):
        source = [Atom("R", [X, Y]), Atom("S", [Y, Z])]
        target = Instance([Atom("R", [A, B]), Atom("S", [C, C])])
        assert not has_homomorphism(source, target)

    def test_multiple_homs(self):
        source = [Atom("R", [X, Y])]
        target = Instance([Atom("R", [A, B]), Atom("R", [B, C])])
        assert len(list(homomorphisms(source, target))) == 2

    def test_target_as_list(self):
        assert find_homomorphism([Atom("R", [X])], [Atom("R", [A])]) == {X: A}

    def test_empty_source(self):
        assert list(homomorphisms([], Instance())) == [{}]

    def test_partial_propagates(self):
        source = [Atom("R", [X, Y])]
        target = Instance([Atom("R", [A, B]), Atom("R", [B, C])])
        found = list(homomorphisms(source, target, partial={X: B}))
        assert found == [{X: B, Y: C}]


class TestIsHomomorphism:
    def test_valid(self):
        source = [Atom("R", [N1, N2])]
        target = Instance([Atom("R", [A, B])])
        assert is_homomorphism({N1: A, N2: B}, source, target)

    def test_constant_must_fix(self):
        assert not is_homomorphism({A: B}, [Atom("R", [A])], Instance([Atom("R", [B])]))

    def test_missing_image(self):
        assert not is_homomorphism({N1: A}, [Atom("R", [N1])], Instance([Atom("R", [B])]))


class TestIsomorphism:
    def test_null_renaming_is_iso(self):
        left = [Atom("R", [N1, A])]
        right = [Atom("R", [N2, A])]
        assert are_isomorphic(left, right)

    def test_different_structure_not_iso(self):
        assert not are_isomorphic([Atom("R", [N1, N1])], [Atom("R", [N1, N2])])

    def test_size_mismatch(self):
        assert not are_isomorphic([Atom("R", [A])], [Atom("R", [A]), Atom("R", [B])])

    def test_is_isomorphism_checks_inverse(self):
        left = Instance([Atom("R", [N1, N2])])
        right = Instance([Atom("R", [A, A])])
        collapse = {N1: A, N2: A}
        assert is_homomorphism(collapse, left, right)
        assert not is_isomorphism(collapse, left, right)

    def test_constants_matter(self):
        assert not are_isomorphic([Atom("R", [A])], [Atom("R", [B])])
