"""Property tests for the term-position indexes of Instance/MultisetInstance.

The indexes are maintained incrementally by ``add``/``discard``/``copy``;
these tests check them against brute-force recomputation over random
add/discard interleavings.
"""

import random

import pytest

from repro.core.atoms import Atom
from repro.core.instance import Instance, MultisetInstance
from repro.core.terms import Constant, Null

PREDICATES = [("R", 2), ("S", 3), ("T", 1)]
TERMS = [Constant(f"c{i}") for i in range(4)] + [Null(f"n{i}") for i in range(3)]


def random_atom(rng: random.Random) -> Atom:
    predicate, arity = rng.choice(PREDICATES)
    return Atom(predicate, [rng.choice(TERMS) for _ in range(arity)])


def assert_position_index_consistent(instance: Instance) -> None:
    """with_term_at must agree with a brute-force scan, in both directions."""
    atoms = instance.atoms()
    # Every atom is in every bucket its positions dictate...
    for atom in atoms:
        for i, term in enumerate(atom.terms, start=1):
            assert atom in instance.with_term_at(atom.predicate, i, term)
    # ...and every possible bucket contains exactly the brute-force set.
    for predicate, arity in PREDICATES:
        for position in range(1, arity + 1):
            for term in TERMS:
                expected = {
                    a
                    for a in atoms
                    if a.predicate == predicate and a.terms[position - 1] == term
                }
                assert set(instance.with_term_at(predicate, position, term)) == expected
    # The predicate buckets partition the atom set.
    for predicate, _ in PREDICATES:
        expected = {a for a in atoms if a.predicate == predicate}
        assert set(instance.with_predicate(predicate)) == expected


class TestInstancePositionIndex:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_add_discard_interleaving(self, seed):
        rng = random.Random(seed)
        instance = Instance()
        pool = [random_atom(rng) for _ in range(40)]
        for step in range(200):
            atom = rng.choice(pool)
            if rng.random() < 0.7:
                instance.add(atom)
            else:
                instance.discard(atom)
            if step % 25 == 0:
                assert_position_index_consistent(instance)
        assert_position_index_consistent(instance)

    def test_discard_clears_all_buckets(self):
        atom = Atom("R", [Constant("a"), Constant("a")])
        instance = Instance([atom])
        assert instance.discard(atom)
        assert not instance.with_predicate("R")
        assert not instance.with_term_at("R", 1, Constant("a"))
        assert not instance.with_term_at("R", 2, Constant("a"))

    def test_repeated_term_indexed_per_position(self):
        atom = Atom("R", [Constant("a"), Constant("a")])
        instance = Instance([atom])
        assert set(instance.with_term_at("R", 1, Constant("a"))) == {atom}
        assert set(instance.with_term_at("R", 2, Constant("a"))) == {atom}
        assert not instance.with_term_at("R", 1, Constant("b"))

    def test_copy_is_independent(self):
        rng = random.Random(7)
        instance = Instance(random_atom(rng) for _ in range(20))
        clone = instance.copy()
        fresh = Atom("R", [Constant("zz"), Constant("zz")])
        clone.add(fresh)
        removed = next(iter(instance))
        clone.discard(removed)
        assert fresh not in instance
        assert not instance.with_term_at("R", 1, Constant("zz"))
        assert removed in instance
        assert_position_index_consistent(instance)
        assert_position_index_consistent(clone)

    def test_iteration_order_is_insertion_order(self):
        # Deterministic derivations rely on insertion-ordered buckets.
        atoms = [Atom("R", [Constant(f"x{i}"), Constant(f"x{i}")]) for i in range(10)]
        instance = Instance(atoms)
        assert list(instance) == atoms
        assert list(instance.with_predicate("R")) == atoms


class TestMultisetPositionIndex:
    def test_indexes_track_occurrences(self):
        ms = MultisetInstance()
        atom = Atom("R", [Constant("a"), Constant("b")])
        occ1 = ms.add_atom(atom, tag=1)
        occ2 = ms.add_atom(atom, tag=2)
        other = ms.add_atom(Atom("R", [Constant("b"), Constant("b")]), tag=3)
        assert set(ms.with_term_at("R", 1, Constant("a"))) == {occ1, occ2}
        assert set(ms.with_term_at("R", 2, Constant("b"))) == {occ1, occ2, other}
        assert set(ms.occurrences_of(atom)) == {occ1, occ2}
        assert not ms.occurrences_of(Atom("R", [Constant("z"), Constant("z")]))

    def test_copy_is_independent(self):
        ms = MultisetInstance()
        atom = Atom("S", [Constant("a")])
        ms.add_atom(atom, tag=1)
        clone = ms.copy()
        clone.add_atom(atom, tag=2)
        assert ms.multiplicity(atom) == 1
        assert len(ms.occurrences_of(atom)) == 1
        assert len(clone.occurrences_of(atom)) == 2
