"""Unit tests for repro.core.schema."""

import pytest

from repro.core.atoms import Atom
from repro.core.schema import Schema
from repro.core.terms import Constant


class TestSchema:
    def test_add_and_arity(self):
        s = Schema({"R": 2})
        assert s.arity("R") == 2
        assert "R" in s
        assert "S" not in s

    def test_unknown_predicate(self):
        with pytest.raises(KeyError):
            Schema().arity("R")

    def test_arity_conflict_rejected(self):
        s = Schema({"R": 2})
        with pytest.raises(ValueError):
            s.add("R", 3)

    def test_non_positive_arity_rejected(self):
        with pytest.raises(ValueError):
            Schema({"R": 0})

    def test_max_arity(self):
        assert Schema({"R": 2, "S": 4}).max_arity == 4
        assert Schema().max_arity == 0

    def test_positions(self):
        s = Schema({"R": 2, "Q": 1})
        assert s.positions() == [("Q", 1), ("R", 1), ("R", 2)]

    def test_validate_atom(self):
        s = Schema({"R": 2})
        s.validate_atom(Atom("R", [Constant("a"), Constant("b")]))
        with pytest.raises(ValueError):
            s.validate_atom(Atom("R", [Constant("a")]))

    def test_from_atoms(self):
        s = Schema.from_atoms([Atom("R", [Constant("a")])])
        assert s.arity("R") == 1

    def test_merge(self):
        merged = Schema({"R": 2}).merge(Schema({"S": 1}))
        assert set(merged) == {"R", "S"}

    def test_merge_conflict(self):
        with pytest.raises(ValueError):
            Schema({"R": 2}).merge(Schema({"R": 3}))

    def test_iteration_sorted(self):
        assert list(Schema({"Z": 1, "A": 1})) == ["A", "Z"]

    def test_equality_and_hash(self):
        assert Schema({"R": 2}) == Schema({"R": 2})
        assert hash(Schema({"R": 2})) == hash(Schema({"R": 2}))
