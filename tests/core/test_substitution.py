"""Unit tests for repro.core.substitution."""

import pytest

from repro.core.atoms import Atom
from repro.core.substitution import Substitution
from repro.core.terms import Constant, Null, Variable

X, Y, Z = Variable("x"), Variable("y"), Variable("z")
A, B = Constant("a"), Constant("b")


class TestBasics:
    def test_empty(self):
        s = Substitution()
        assert len(s) == 0
        assert s.get(X) is None

    def test_lookup(self):
        s = Substitution({X: A})
        assert s[X] == A
        assert X in s
        assert Y not in s

    def test_non_term_rejected(self):
        with pytest.raises(TypeError):
            Substitution({X: "a"})  # type: ignore[dict-item]

    def test_immutable(self):
        s = Substitution({X: A})
        with pytest.raises(AttributeError):
            s._map = {}  # type: ignore[misc]

    def test_domain_image(self):
        s = Substitution({X: A, Y: A})
        assert s.domain() == {X, Y}
        assert s.image() == {A}


class TestOperations:
    def test_extend(self):
        s = Substitution({X: A}).extend(Y, B)
        assert s[Y] == B
        assert s[X] == A

    def test_extend_conflict(self):
        with pytest.raises(ValueError):
            Substitution({X: A}).extend(X, B)

    def test_extend_same_value_ok(self):
        s = Substitution({X: A}).extend(X, A)
        assert len(s) == 1

    def test_restrict(self):
        s = Substitution({X: A, Y: B}).restrict([X])
        assert X in s and Y not in s

    def test_compose(self):
        inner = Substitution({X: Null("n")})
        outer = Substitution({Null("n"): A, Y: B})
        composed = inner.compose(outer)
        assert composed[X] == A
        assert composed[Y] == B

    def test_apply_to_atom(self):
        s = Substitution({X: A})
        assert s.apply_to_atom(Atom("R", [X, Y])) == Atom("R", [A, Y])

    def test_apply_to_term_identity_when_unmapped(self):
        assert Substitution().apply_to_term(X) == X

    def test_merge_agreeing(self):
        merged = Substitution({X: A}).merge(Substitution({Y: B}))
        assert merged[X] == A and merged[Y] == B

    def test_merge_conflicting(self):
        with pytest.raises(ValueError):
            Substitution({X: A}).merge(Substitution({X: B}))

    def test_agrees_with(self):
        assert Substitution({X: A}).agrees_with(Substitution({X: A, Y: B}))
        assert not Substitution({X: A}).agrees_with(Substitution({X: B}))


class TestInjectivity:
    def test_is_injective(self):
        assert Substitution({X: A, Y: B}).is_injective()
        assert not Substitution({X: A, Y: A}).is_injective()

    def test_inverse(self):
        inv = Substitution({X: A}).inverse()
        assert inv[A] == X

    def test_inverse_requires_injective(self):
        with pytest.raises(ValueError):
            Substitution({X: A, Y: A}).inverse()


class TestCanonical:
    def test_equality_and_hash(self):
        assert Substitution({X: A}) == Substitution({X: A})
        assert hash(Substitution({X: A})) == hash(Substitution({X: A}))

    def test_canonical_items_sorted(self):
        s = Substitution({Y: B, X: A})
        assert s.canonical_items() == ((X, A), (Y, B))
