"""Unit tests for repro.core.equality (equality types, Appendix A/D.2)."""

import pytest

from repro.core.atoms import Atom
from repro.core.equality import (
    EqualityType,
    LabeledEqualityType,
    enumerate_equality_types,
    set_partitions,
)
from repro.core.terms import Constant, Null

A, B = Constant("a"), Constant("b")


class TestSetPartitions:
    def test_bell_numbers(self):
        # B(0..5) = 1, 1, 2, 5, 15, 52
        for n, bell in [(0, 1), (1, 1), (2, 2), (3, 5), (4, 15), (5, 52)]:
            assert len(list(set_partitions(n))) == bell

    def test_partitions_cover_exactly(self):
        for partition in set_partitions(3):
            covered = sorted(p for cls in partition for p in cls)
            assert covered == [1, 2, 3]

    def test_partitions_distinct(self):
        partitions = [frozenset(p) for p in set_partitions(4)]
        assert len(partitions) == len(set(partitions))


class TestEqualityType:
    def test_of_atom(self):
        et = EqualityType.of_atom(Atom("R", [A, B, A]))
        assert et.same(1, 3)
        assert not et.same(1, 2)
        assert et.arity == 3

    def test_bad_partition_rejected(self):
        with pytest.raises(ValueError):
            EqualityType("R", [frozenset({1}), frozenset({3})])
        with pytest.raises(ValueError):
            EqualityType("R", [frozenset({1, 2}), frozenset({2})])

    def test_class_of(self):
        et = EqualityType.of_atom(Atom("R", [A, A, B]))
        assert et.class_of(1) == frozenset({1, 2})
        with pytest.raises(IndexError):
            et.class_of(4)

    def test_canonical_atom_realizes_type(self):
        et = EqualityType("R", [frozenset({1, 3}), frozenset({2})])
        can = et.canonical_atom()
        assert can[1] == can[3]
        assert can[1] != can[2]
        assert EqualityType.of_atom(can) == et

    def test_refines(self):
        finer = EqualityType.of_atom(Atom("R", [A, A, A]))
        coarser = EqualityType.of_atom(Atom("R", [A, A, B]))
        assert finer.refines(coarser)
        assert not coarser.refines(finer)
        assert coarser.refines(coarser)

    def test_refines_requires_same_predicate(self):
        assert not EqualityType.of_atom(Atom("R", [A])).refines(
            EqualityType.of_atom(Atom("S", [A]))
        )

    def test_enumerate(self):
        types = list(enumerate_equality_types("R", 3))
        assert len(types) == 5
        assert len(set(types)) == 5

    def test_hash_equality(self):
        e1 = EqualityType.of_atom(Atom("R", [A, B]))
        e2 = EqualityType("R", [frozenset({1}), frozenset({2})])
        assert e1 == e2 and hash(e1) == hash(e2)

    def test_immutable(self):
        et = EqualityType.of_atom(Atom("R", [A]))
        with pytest.raises(AttributeError):
            et.predicate = "S"  # type: ignore[misc]


class TestLabeledEqualityType:
    def test_labels_must_be_classes(self):
        et = EqualityType.of_atom(Atom("R", [A, B]))
        with pytest.raises(ValueError):
            LabeledEqualityType(et, {frozenset({1, 2}): "t"})

    def test_labels_injective(self):
        et = EqualityType.of_atom(Atom("R", [A, B]))
        with pytest.raises(ValueError):
            LabeledEqualityType(
                et, {frozenset({1}): "t", frozenset({2}): "t"}
            )

    def test_label_of_position(self):
        et = EqualityType.of_atom(Atom("R", [A, A, B]))
        labeled = LabeledEqualityType(et, {frozenset({1, 2}): "u"})
        assert labeled.label_of_position(1) == "u"
        assert labeled.label_of_position(2) == "u"
        assert labeled.label_of_position(3) is None

    def test_relabel_drops_untranslated(self):
        et = EqualityType.of_atom(Atom("R", [A, B]))
        labeled = LabeledEqualityType(
            et, {frozenset({1}): "u", frozenset({2}): "v"}
        )
        pushed = labeled.relabel({"u": "w"})
        assert pushed.label_of_position(1) == "w"
        assert pushed.label_of_position(2) is None

    def test_of_atom_relative(self):
        atom = Atom("R", [Null("n"), Constant("a")])
        reference = Atom("S", [Constant("a"), Constant("c")])
        labeled = LabeledEqualityType.of_atom_relative(atom, reference)
        # 'a' occurs in the reference at class {1}; 'n' does not occur.
        ref_type = EqualityType.of_atom(reference)
        assert labeled.label_of_position(2) == ref_type.class_of(1)
        assert labeled.label_of_position(1) is None

    def test_hash_equality(self):
        et = EqualityType.of_atom(Atom("R", [A, B]))
        l1 = LabeledEqualityType(et, {frozenset({1}): "u"})
        l2 = LabeledEqualityType(et, {frozenset({1}): "u"})
        assert l1 == l2 and hash(l1) == hash(l2)
