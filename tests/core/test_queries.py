"""Unit tests for repro.core.queries."""

import pytest

from repro.core.instance import Instance
from repro.core.parsing import parse_atom, parse_instance
from repro.core.queries import ConjunctiveQuery
from repro.core.terms import Constant


class TestConjunctiveQuery:
    def test_parse_and_evaluate(self):
        q = ConjunctiveQuery.parse("Q(x) :- R(x,y)")
        inst = parse_instance("R(a,b), R(b,c)")
        assert q.evaluate(inst) == {(Constant("a"),), (Constant("b"),)}

    def test_join_query(self):
        q = ConjunctiveQuery.parse("Q(x,z) :- R(x,y), R(y,z)")
        inst = parse_instance("R(a,b), R(b,c)")
        assert q.evaluate(inst) == {(Constant("a"), Constant("c"))}

    def test_certain_answers_drop_nulls(self):
        q = ConjunctiveQuery.parse("Q(x,y) :- R(x,y)")
        inst = parse_instance("R(a,?n), R(a,b)")
        assert q.certain_answers(inst) == {(Constant("a"), Constant("b"))}

    def test_holds_in(self):
        q = ConjunctiveQuery.parse("Q(x) :- R(x,x)")
        assert not q.holds_in(parse_instance("R(a,b)"))
        assert q.holds_in(parse_instance("R(a,a)"))

    def test_answer_var_must_occur(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery.parse("Q(z) :- R(x,y)")

    def test_repr_roundtrips_shape(self):
        q = ConjunctiveQuery.parse("Q(x) :- R(x,y)")
        assert "Q(x)" in repr(q)
