"""Unit tests for repro.util.unionfind."""

from repro.util.unionfind import UnionFind


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind([1, 2, 3])
        assert not uf.same(1, 2)
        assert uf.same(1, 1)

    def test_union(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.same(1, 3)
        assert not uf.same(1, 4)

    def test_find_auto_registers(self):
        uf = UnionFind()
        assert uf.find("x") == "x"
        assert "x" in uf

    def test_classes(self):
        uf = UnionFind([1, 2, 3, 4])
        uf.union(1, 2)
        classes = uf.classes()
        assert {frozenset(c) for c in classes} == {
            frozenset({1, 2}),
            frozenset({3}),
            frozenset({4}),
        }

    def test_union_idempotent(self):
        uf = UnionFind()
        root1 = uf.union(1, 2)
        root2 = uf.union(1, 2)
        assert root1 == root2

    def test_len_and_elements(self):
        uf = UnionFind([1, 2])
        assert len(uf) == 2
        assert uf.elements() == {1, 2}

    def test_mixed_types(self):
        uf = UnionFind()
        uf.union(("a", 1), ("b", 2))
        assert uf.same(("a", 1), ("b", 2))
