"""Unit tests for repro.util.graphs."""

from repro.util.graphs import (
    ancestors_of,
    find_cycle,
    has_cycle,
    make_graph,
    reachable_from,
    shortest_path,
    strongly_connected_components,
    topological_order,
    transitive_closure,
)


class TestCycles:
    def test_acyclic(self):
        graph = make_graph([(1, 2), (2, 3), (1, 3)])
        assert not has_cycle(graph)
        assert find_cycle(graph) is None

    def test_simple_cycle(self):
        graph = make_graph([(1, 2), (2, 3), (3, 1)])
        assert has_cycle(graph)
        cycle = find_cycle(graph)
        assert sorted(cycle) == [1, 2, 3]

    def test_self_loop(self):
        graph = make_graph([(1, 1)])
        assert has_cycle(graph)
        assert find_cycle(graph) == [1]

    def test_cycle_off_the_dag(self):
        graph = make_graph([(0, 1), (1, 2), (2, 3), (3, 2)])
        cycle = find_cycle(graph)
        assert sorted(cycle) == [2, 3]


class TestTopologicalOrder:
    def test_order_respects_edges(self):
        graph = make_graph([(1, 2), (1, 3), (3, 2)])
        order = topological_order(graph)
        assert order.index(1) < order.index(3) < order.index(2)

    def test_cyclic_returns_none(self):
        assert topological_order(make_graph([(1, 2), (2, 1)])) is None

    def test_empty(self):
        assert topological_order({}) == []


class TestReachability:
    def test_reachable_from(self):
        graph = make_graph([(1, 2), (2, 3), (4, 5)])
        assert reachable_from(graph, [1]) == {1, 2, 3}

    def test_ancestors_of(self):
        graph = make_graph([(1, 2), (2, 3), (4, 3)])
        assert ancestors_of(graph, 3) == {1, 2, 4}

    def test_ancestors_self_loop(self):
        graph = make_graph([(1, 1)])
        assert 1 in ancestors_of(graph, 1)

    def test_transitive_closure(self):
        closure = transitive_closure(make_graph([(1, 2), (2, 3)]))
        assert closure[1] == {2, 3}
        assert closure[3] == set()


class TestSCC:
    def test_components(self):
        graph = make_graph([(1, 2), (2, 1), (2, 3)])
        components = strongly_connected_components(graph)
        assert {frozenset(c) for c in components} == {
            frozenset({1, 2}),
            frozenset({3}),
        }

    def test_reverse_topological_order(self):
        graph = make_graph([(1, 2), (2, 3)])
        components = strongly_connected_components(graph)
        # Tarjan emits sinks first.
        assert components[0] == {3}

    def test_all_singletons_in_dag(self):
        graph = make_graph([(1, 2), (1, 3)])
        assert all(len(c) == 1 for c in strongly_connected_components(graph))


class TestShortestPath:
    def test_path_found(self):
        graph = make_graph([(1, 2), (2, 3), (1, 4)])
        assert shortest_path(graph, 1, lambda n: n == 3) == [1, 2, 3]

    def test_source_is_goal(self):
        assert shortest_path({1: set()}, 1, lambda n: n == 1) == [1]

    def test_unreachable(self):
        graph = make_graph([(1, 2)])
        assert shortest_path(graph, 2, lambda n: n == 1) is None
