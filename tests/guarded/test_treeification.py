"""Tests for the Treeification Theorem machinery (Theorem 5.5, Example 5.6)."""

import pytest

from repro.core.atoms import Atom
from repro.core.parsing import parse_database
from repro.core.terms import Constant
from repro.chase.restricted import exists_derivation_of_length, restricted_chase
from repro.guarded.treeification import (
    choose_alpha_infinity,
    longs_for_graph,
    remote_side_parent_situations,
    treeify,
    verify_treeification,
)
from repro.guarded.chaseable import chase_graph_from_derivation
from repro.tgds.tgd import parse_tgds


@pytest.fixture
def example_56_evidence(example_56_tgds, example_56_database):
    result = restricted_chase(example_56_database, example_56_tgds, max_steps=10)
    assert not result.terminated
    return result.derivation


class TestRemoteSideParents:
    def test_example_56_situation_detected(
        self, example_56_tgds, example_56_database, example_56_evidence
    ):
        graph = chase_graph_from_derivation(example_56_database, example_56_evidence)
        situations = remote_side_parent_situations(graph, example_56_tgds)
        assert situations
        alpha, _, beta, _ = situations[0]
        assert alpha == Atom("R", [Constant("a"), Constant("b")])
        assert beta == Atom("S", [Constant("b"), Constant("c")])

    def test_longs_for_edge(self, example_56_tgds, example_56_database, example_56_evidence):
        graph = chase_graph_from_derivation(example_56_database, example_56_evidence)
        longs = longs_for_graph(graph, example_56_tgds)
        r_atom = Atom("R", [Constant("a"), Constant("b")])
        s_atom = Atom("S", [Constant("b"), Constant("c")])
        assert longs.successors(r_atom) == [s_atom]

    def test_alpha_infinity_is_r(self, example_56_tgds, example_56_database, example_56_evidence):
        graph = chase_graph_from_derivation(example_56_database, example_56_evidence)
        alpha = choose_alpha_infinity(graph, example_56_tgds)
        assert alpha.predicate == "R"

    def test_no_situations_without_remote_parents(self, intro_tgds):
        db = parse_database("R(a,b), R(b,c)")
        result = restricted_chase(db, intro_tgds)
        graph = chase_graph_from_derivation(db, result.derivation)
        assert remote_side_parent_situations(graph, intro_tgds) == []


class TestTreeify:
    def test_example_56_dac(self, example_56_tgds, example_56_database, example_56_evidence):
        treeified = treeify(example_56_database, example_56_tgds, example_56_evidence)
        dac = treeified.database()
        predicates = sorted(a.predicate for a in dac)
        assert predicates == ["R", "S"]
        # The renamed copies share exactly the term the originals shared (b).
        r_atom = next(a for a in dac if a.predicate == "R")
        s_atom = next(a for a in dac if a.predicate == "S")
        assert r_atom[2] == s_atom[1]
        assert r_atom[1] != s_atom[2]

    def test_dac_is_join_tree(self, example_56_tgds, example_56_database, example_56_evidence):
        treeified = treeify(example_56_database, example_56_tgds, example_56_evidence)
        assert treeified.join_tree().is_join_tree()

    def test_homomorphism_back_to_original(
        self, example_56_tgds, example_56_database, example_56_evidence
    ):
        treeified = treeify(example_56_database, example_56_tgds, example_56_evidence)
        mapping = treeified.homomorphism_to_original()
        for label, original in zip(treeified.labels, treeified.originals):
            assert label.apply(mapping) == original

    def test_depth_labels(self, example_56_tgds, example_56_database, example_56_evidence):
        treeified = treeify(example_56_database, example_56_tgds, example_56_evidence)
        assert treeified.depths[0] == 0
        assert all(
            d == 0 or treeified.parents[i] is not None
            for i, d in enumerate(treeified.depths)
        )

    def test_requires_guarded(self, example_56_database):
        unguarded = parse_tgds(["R(x,y), S(y,z) -> P(x,z)"])
        with pytest.raises(ValueError):
            treeify(example_56_database, unguarded, None)  # type: ignore[arg-type]


class TestVerification:
    def test_dac_reproduces_divergence(
        self, example_56_tgds, example_56_database, example_56_evidence
    ):
        """Theorem 5.5's payoff: the acyclic database diverges too."""
        treeified = treeify(example_56_database, example_56_tgds, example_56_evidence)
        assert verify_treeification(treeified, example_56_tgds, target_steps=10)

    def test_single_r_atom_does_not_diverge(self, example_56_tgds):
        """The naive guess {R(a,b)} fails — the paper's Example 5.6 point."""
        assert (
            exists_derivation_of_length(
                parse_database("R(a,b)"), example_56_tgds, 1
            )
            is None
        )

    def test_multiset_roots_for_weakly_restricted(
        self, example_56_tgds, example_56_database, example_56_evidence
    ):
        treeified = treeify(example_56_database, example_56_tgds, example_56_evidence)
        roots = treeified.multiset_roots()
        assert len(roots) == len(treeified.labels)
        assert all(isinstance(depth, int) for _, depth in roots)
