"""Tests for abstract join trees (Definitions 5.8 and 5.10)."""

import pytest

from repro.core.parsing import parse_database
from repro.core.homomorphism import are_isomorphic
from repro.chase.restricted import restricted_chase
from repro.guarded.abstract_join_tree import (
    AJTNode,
    AbstractJoinTree,
    F_ORIGIN,
    ajt_from_derivation,
    eq_related,
    make_eq,
)
from repro.tgds.tgd import parse_tgds


def _as_structure(atoms):
    """Replace every term by a null so isomorphism ignores constant names."""
    from repro.core.terms import Null

    rename = {}
    out = []
    for atom in atoms:
        for term in atom.terms:
            if term not in rename:
                rename[term] = Null(f"str{len(rename)}")
        out.append(atom.apply(rename))
    return out


@pytest.fixture
def encoded_56(example_56_tgds, example_56_database):
    result = restricted_chase(example_56_database, example_56_tgds, max_steps=6)
    tree = ajt_from_derivation(example_56_database, result.derivation, example_56_tgds)
    return tree, result


class TestEqRelations:
    def test_make_eq_closure(self):
        eq = make_eq(
            [(("m", 1), ("m", 2)), (("m", 2), ("m", 3))],
            [("m", 1), ("m", 2), ("m", 3), ("f", 1)],
        )
        assert eq_related(eq, ("m", 1), ("m", 3))
        assert not eq_related(eq, ("m", 1), ("f", 1))

    def test_empty_relation(self):
        eq = make_eq([], [("m", 1), ("m", 2)])
        assert not eq_related(eq, ("m", 1), ("m", 2))


class TestEncoding:
    def test_valid_per_definition_58(self, encoded_56, example_56_tgds):
        tree, _ = encoded_56
        assert tree.violations(example_56_tgds) == []

    def test_one_node_per_db_atom_and_step(self, encoded_56, example_56_database):
        tree, result = encoded_56
        assert len(tree.nodes) == len(example_56_database) + len(result.derivation.steps)

    def test_fact_nodes_form_prefix(self, encoded_56):
        tree, _ = encoded_56
        for node in tree.nodes:
            if node.is_fact and node.parent is not None:
                assert tree.nodes[node.parent].is_fact

    def test_decode_isomorphic_to_real_instance(self, encoded_56):
        """∆(T) reconstructs the chase instance up to renaming (Lemma 5.9).

        ∆ invents its own term names, so the comparison is isomorphism up
        to renaming of *all* terms (constants included): we strip constant
        rigidity by replacing every term with a null on both sides.
        """
        tree, result = encoded_56
        decoded = tree.delta_instance()
        assert are_isomorphic(
            _as_structure(decoded.atoms()), _as_structure(result.instance.atoms())
        )

    def test_decode_fact_part_isomorphic_to_database(
        self, encoded_56, example_56_database
    ):
        tree, _ = encoded_56
        decoded_db = tree.delta_fact_instance()
        assert are_isomorphic(
            _as_structure(decoded_db.atoms()),
            _as_structure(example_56_database.atoms()),
        )

    def test_cyclic_database_rejected(self, example_56_tgds):
        cyclic = parse_database("R(a,b), S(b,c), T2(c,a), G(a,b)")
        result = restricted_chase(cyclic, example_56_tgds, max_steps=2)
        with pytest.raises(ValueError, match="not acyclic"):
            ajt_from_derivation(cyclic, result.derivation, example_56_tgds)


class TestDefinition58Violations:
    def test_wrong_head_predicate_detected(self, example_56_tgds):
        sigma3 = example_56_tgds[2]  # P(x,y) -> ∃z P(y,z)
        nodes = [
            AJTNode(0, None, "P", F_ORIGIN, make_eq([], [("m", 1), ("m", 2)])),
            AJTNode(
                1,
                0,
                "Q",  # wrong: head predicate is P
                sigma3,
                make_eq([(("f", 2), ("m", 1))],
                        [("m", 1), ("m", 2), ("f", 1), ("f", 2)]),
            ),
        ]
        tree = AbstractJoinTree(nodes, {"P": 2, "Q": 2})
        assert any("condition 3" in v or "predicate" in v for v in tree.violations(example_56_tgds))

    def test_missing_frontier_link_detected(self, example_56_tgds):
        sigma3 = example_56_tgds[2]
        nodes = [
            AJTNode(0, None, "P", F_ORIGIN, make_eq([], [("m", 1), ("m", 2)])),
            AJTNode(
                1, 0, "P", sigma3,
                # (5a) requires [[f,2],[m,1]] since guard P(x,y) and head
                # P(y,z) share y at guard pos 2 / head pos 1 — omit it.
                make_eq([], [("m", 1), ("m", 2), ("f", 1), ("f", 2)]),
            ),
        ]
        tree = AbstractJoinTree(nodes, {"P": 2})
        assert any("5a" in v for v in tree.violations(example_56_tgds))

    def test_non_f_root_detected(self, example_56_tgds):
        sigma3 = example_56_tgds[2]
        nodes = [
            AJTNode(0, None, "P", sigma3, make_eq([], [("m", 1), ("m", 2)])),
        ]
        tree = AbstractJoinTree(nodes, {"P": 2})
        assert any("root" in v for v in tree.violations(example_56_tgds))


class TestChaseableAJT:
    def test_encoded_derivation_is_chaseable(self, encoded_56, example_56_tgds):
        tree, _ = encoded_56
        violations = tree.chaseable_violations(example_56_tgds)
        assert violations == []
        assert tree.is_chaseable(example_56_tgds)

    def test_missing_side_atom_witness_detected(self, example_56_tgds):
        """A P-node under an R-node without any T-node violates condition 2."""
        sigma2 = example_56_tgds[1]  # R(x,y), T(y) -> P(x,y)
        nodes = [
            AJTNode(0, None, "R", F_ORIGIN, make_eq([], [("m", 1), ("m", 2)])),
            AJTNode(
                1, 0, "P", sigma2,
                make_eq(
                    [(("f", 1), ("m", 1)), (("f", 2), ("m", 2))],
                    [("m", 1), ("m", 2), ("f", 1), ("f", 2)],
                ),
            ),
        ]
        tree = AbstractJoinTree(nodes, {"R": 2, "P": 2, "T": 1})
        assert tree.violations(example_56_tgds) == []
        violations = tree.chaseable_violations(example_56_tgds)
        assert any("witness" in v for v in violations)

    def test_parent_edges_include_side_parents(self, encoded_56, example_56_tgds):
        tree, _ = encoded_56
        edges = tree.parent_edges(example_56_tgds)
        tree_edges = {
            (n.parent, n.node_id) for n in tree.nodes if n.parent is not None
        }
        assert tree_edges <= edges
        assert len(edges) > len(tree_edges)  # the T side-parent of the P node

    def test_before_graph_acyclic_for_real_derivation(
        self, encoded_56, example_56_tgds
    ):
        from repro.util import graphs

        tree, _ = encoded_56
        assert not graphs.has_cycle(tree.before_graph(example_56_tgds))
