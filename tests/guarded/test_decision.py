"""Tests for the guarded CT_res_∀∀ decision procedure."""

import pytest

from repro.core.parsing import parse_database
from repro.chase.restricted import restricted_chase
from repro.guarded.decision import (
    PumpWitness,
    candidate_databases,
    canonical_body_database,
    decide_guarded,
    find_pump,
)
from repro.termination.verdict import Status
from repro.tgds.tgd import parse_tgds


class TestCandidates:
    def test_canonical_body_database(self):
        tgds = parse_tgds(["R(x,y), T(y) -> P(x,y)"])
        db = canonical_body_database(tgds[0])
        assert len(db) == 2
        preds = sorted(a.predicate for a in db)
        assert preds == ["R", "T"]

    def test_candidates_deduplicated(self):
        tgds = parse_tgds(["R(x,x) -> S(x)"])
        candidates = candidate_databases(tgds)
        keys = [frozenset(db.atoms()) for db in candidates]
        assert len(keys) == len(set(keys))

    def test_unified_variant_included(self):
        tgds = parse_tgds(["R(x,y) -> S(x)"])
        candidates = candidate_databases(tgds)
        assert any(len(db.domain()) == 1 for db in candidates)


class TestFindPump:
    def test_pump_on_linear_divergence(self, diverging_linear):
        db = parse_database("R(a,b)")
        run = restricted_chase(db, diverging_linear, strategy="lifo", max_steps=30)
        pump = find_pump(db, diverging_linear, run.derivation)
        assert pump is not None
        assert pump.period_length == 1
        pump.derivation.validate(diverging_linear)
        assert len(pump.derivation.steps) > 30

    def test_no_pump_on_terminating(self, example_32_tgds, example_32_database):
        run = restricted_chase(example_32_database, example_32_tgds)
        assert find_pump(example_32_database, example_32_tgds, run.derivation) is None


class TestDecideGuarded:
    def test_intro_example_terminates(self, intro_tgds):
        verdict = decide_guarded(intro_tgds)
        assert verdict.status == Status.ALL_TERMINATING
        assert verdict.method == "weak-acyclicity"

    def test_linear_divergence_detected(self, diverging_linear):
        verdict = decide_guarded(diverging_linear)
        assert verdict.status == Status.NOT_ALL_TERMINATING
        witness = verdict.certificate["witness"]
        assert isinstance(witness, PumpWitness)
        witness.derivation.validate(diverging_linear)

    def test_example_56_not_all_terminating(self, example_56_tgds):
        verdict = decide_guarded(example_56_tgds)
        assert verdict.status == Status.NOT_ALL_TERMINATING

    def test_side_condition_loop(self):
        tgds = parse_tgds(["R(x,y), A(x) -> R(y,z)", "R(x,y) -> A(y)"])
        verdict = decide_guarded(tgds)
        assert verdict.status == Status.NOT_ALL_TERMINATING

    def test_full_tgds_certificate(self):
        tgds = parse_tgds(["R(x,y) -> S(y,x)"])
        verdict = decide_guarded(tgds)
        assert verdict.status == Status.ALL_TERMINATING
        assert verdict.method == "full-tgds"

    def test_unguarded_rejected(self):
        with pytest.raises(ValueError, match="not guarded"):
            decide_guarded(parse_tgds(["R(x,y), S(y,z) -> P(x,z)"]))

    def test_extra_candidates_used(self, example_56_tgds):
        # Supplying the treeified witness database directly also works.
        verdict = decide_guarded(
            example_56_tgds,
            extra_candidates=[parse_database("R(a,b), S(b,c)")],
        )
        assert verdict.status == Status.NOT_ALL_TERMINATING

    def test_terminating_guarded_loop(self):
        tgds = parse_tgds(["P(x) -> R(x,y)", "R(x,y) -> R(y,x)"])
        verdict = decide_guarded(tgds)
        assert verdict.status == Status.ALL_TERMINATING

    def test_critical_oblivious_certificate_path(self):
        # Full rules plus a rule whose oblivious chase on D* terminates but
        # which is neither WA nor JA... use a set that is WA-free but
        # oblivious-terminating: R(x,y) -> S(y,x), S(x,y) -> R(y,x) is full;
        # certificates catch it earlier.  Here we simply check the verdict
        # is sound on a set where only the critical baseline fires.
        tgds = parse_tgds(["R(x,y) -> S(y,z)", "S(x,y) -> R(x,y)"])
        verdict = decide_guarded(tgds)
        # This set genuinely diverges (special-edge cycle realized), so:
        assert verdict.status == Status.NOT_ALL_TERMINATING
