"""Tests for chaseable sets and Theorem 5.3 (both directions)."""

import pytest

from repro.core.parsing import parse_database
from repro.chase.restricted import restricted_chase
from repro.guarded.chaseable import (
    ChaseGraph,
    chase_graph_from_derivation,
    derivation_from_chaseable,
    is_chaseable,
    is_parent_closed,
)
from repro.tgds.tgd import parse_tgds


class TestChaseGraphFromDerivation:
    def test_roots_and_steps(self, example_56_tgds, example_56_database):
        result = restricted_chase(example_56_database, example_56_tgds, max_steps=5)
        graph = chase_graph_from_derivation(example_56_database, result.derivation)
        assert len(graph.roots()) == 2
        assert len(graph) == 2 + 5

    def test_parent_edges_point_to_producers(self, example_56_tgds, example_56_database):
        result = restricted_chase(example_56_database, example_56_tgds, max_steps=4)
        graph = chase_graph_from_derivation(example_56_database, result.derivation)
        for node in graph.nodes:
            if node.trigger is None:
                continue
            body_atoms = {a.apply(node.trigger.h) for a in node.trigger.tgd.body}
            parent_atoms = {graph.nodes[p].atom for p in node.parents}
            assert parent_atoms == body_atoms


class TestDirection1to2:
    """An infinite (long) derivation yields a chaseable set (Theorem 5.3 ⇒)."""

    def test_derivation_node_set_is_chaseable(
        self, example_56_tgds, example_56_database
    ):
        result = restricted_chase(example_56_database, example_56_tgds, max_steps=8)
        graph = chase_graph_from_derivation(example_56_database, result.derivation)
        ok, reason = is_chaseable(graph, range(len(graph)))
        assert ok, reason

    def test_terminating_derivation_also_chaseable(
        self, example_32_tgds, example_32_database
    ):
        result = restricted_chase(example_32_database, example_32_tgds)
        graph = chase_graph_from_derivation(example_32_database, result.derivation)
        ok, reason = is_chaseable(graph, range(len(graph)))
        assert ok, reason


class TestChaseableConditions:
    def test_missing_root_detected(self, example_56_tgds, example_56_database):
        result = restricted_chase(example_56_database, example_56_tgds, max_steps=3)
        graph = chase_graph_from_derivation(example_56_database, result.derivation)
        ok, reason = is_chaseable(graph, range(1, len(graph)))
        assert not ok and "root" in reason

    def test_parent_closure_violation(self, example_56_tgds, example_56_database):
        result = restricted_chase(example_56_database, example_56_tgds, max_steps=4)
        graph = chase_graph_from_derivation(example_56_database, result.derivation)
        # Drop an intermediate derived node but keep its children.
        chosen = set(range(len(graph))) - {2}
        assert not is_parent_closed(graph, chosen)
        ok, reason = is_chaseable(graph, chosen)
        assert not ok and "parent" in reason

    def test_duplicate_atom_copies_create_cycle(self):
        # Build a graph in which the same trigger result appears twice: the
        # copies stop each other, so ≺b over both is cyclic.
        tgds = parse_tgds(["P(x) -> Q(x,z)"])
        db = parse_database("P(a)")
        result = restricted_chase(db, tgds)
        graph = chase_graph_from_derivation(db, result.derivation)
        duplicated = ChaseGraph(list(graph.nodes))
        from repro.chase.real_oblivious import OChaseNode

        original = graph.nodes[1]
        clone = OChaseNode(
            len(graph.nodes), original.atom, original.trigger, original.parents, 1
        )
        duplicated.nodes.append(clone)
        ok, reason = is_chaseable(duplicated, range(len(duplicated.nodes)))
        assert not ok and "cycle" in reason


class TestDirection2to1:
    """A chaseable set linearizes into a valid derivation (Theorem 5.3 ⇐)."""

    def test_roundtrip_reproduces_derivation_length(
        self, example_56_tgds, example_56_database
    ):
        result = restricted_chase(example_56_database, example_56_tgds, max_steps=8)
        graph = chase_graph_from_derivation(example_56_database, result.derivation)
        derivation = derivation_from_chaseable(graph, range(len(graph)), example_56_tgds)
        assert len(derivation.steps) == 8
        derivation.validate(example_56_tgds)

    def test_subset_linearizes(self, example_56_tgds, example_56_database):
        result = restricted_chase(example_56_database, example_56_tgds, max_steps=6)
        graph = chase_graph_from_derivation(example_56_database, result.derivation)
        # Parent-closed prefix: roots + first 3 derived nodes.
        chosen = set(graph.roots()) | {2, 3, 4}
        ok, reason = is_chaseable(graph, chosen)
        assert ok, reason
        derivation = derivation_from_chaseable(graph, chosen, example_56_tgds)
        assert len(derivation.steps) == 3

    def test_non_chaseable_rejected(self, example_56_tgds, example_56_database):
        result = restricted_chase(example_56_database, example_56_tgds, max_steps=4)
        graph = chase_graph_from_derivation(example_56_database, result.derivation)
        with pytest.raises(ValueError, match="not chaseable"):
            derivation_from_chaseable(graph, range(1, len(graph)), example_56_tgds)
