"""Unit tests for join trees and GYO acyclicity (Definition 5.4)."""

from repro.core.parsing import parse_atoms, parse_instance
from repro.guarded.join_tree import (
    JoinTree,
    gyo_join_tree,
    is_acyclic_atoms,
    is_acyclic_instance,
)


def atoms(text):
    return parse_atoms(text, data=True)


class TestGYO:
    def test_single_atom(self):
        tree = gyo_join_tree(atoms("R(a,b)"))
        assert tree is not None
        assert tree.is_join_tree()

    def test_path_is_acyclic(self):
        tree = gyo_join_tree(atoms("R(a,b), S(b,c), T(c,d)"))
        assert tree is not None
        assert tree.is_join_tree()

    def test_triangle_is_cyclic(self):
        assert gyo_join_tree(atoms("R(a,b), S(b,c), T(c,a)")) is None
        assert not is_acyclic_atoms(atoms("R(a,b), S(b,c), T(c,a)"))

    def test_triangle_with_covering_guard_is_acyclic(self):
        assert is_acyclic_atoms(atoms("R(a,b), S(b,c), T(c,a), G(a,b,c)"))

    def test_disconnected_components(self):
        tree = gyo_join_tree(atoms("R(a,b), S(c,d)"))
        assert tree is not None
        assert tree.is_join_tree()

    def test_empty(self):
        tree = gyo_join_tree([])
        assert tree is not None
        assert tree.is_join_tree()

    def test_duplicate_atoms_multiset(self):
        duplicated = atoms("R(a,b)") + atoms("R(a,b)")
        tree = gyo_join_tree(duplicated)
        assert tree is not None

    def test_instance_wrapper(self):
        assert is_acyclic_instance(parse_instance("R(a,b), S(b,c)"))
        assert not is_acyclic_instance(parse_instance("R(a,b), S(b,c), T(c,a)"))


class TestJoinTreeValidation:
    def test_connectedness_violation_detected(self):
        # R(a,b) -- S(c,d) -- T(a,e): 'a' appears at both ends but not in
        # the middle: not a join tree.
        tree = JoinTree(atoms("R(a,b), S(c,d), T(a,e)"), {(0, 1), (1, 2)})
        assert tree.is_tree()
        assert tree.connectedness_violations()
        assert not tree.is_join_tree()

    def test_valid_path_tree(self):
        tree = JoinTree(atoms("R(a,b), S(b,c), T(c,d)"), {(0, 1), (1, 2)})
        assert tree.is_join_tree()

    def test_disconnected_edges_not_a_tree(self):
        tree = JoinTree(atoms("R(a,b), S(b,c), T(c,d)"), {(0, 1)})
        assert not tree.is_tree()

    def test_cycle_not_a_tree(self):
        tree = JoinTree(
            atoms("R(a,b), S(b,c), T(c,a)"), {(0, 1), (1, 2), (0, 2)}
        )
        assert not tree.is_tree()

    def test_neighbors(self):
        tree = JoinTree(atoms("R(a,b), S(b,c), T(c,d)"), {(0, 1), (1, 2)})
        assert tree.neighbors(1) == {0, 2}
