"""Tests for caterpillar words and Λ_T."""

from repro.sticky.alphabet import CaterpillarSymbol, caterpillar_alphabet
from repro.tgds.tgd import parse_tgds


class TestAlphabet:
    def test_symbols_per_body_atom(self):
        tgds = parse_tgds(["R(x,y), P(y,z) -> T(x,y,w)"])
        symbols = caterpillar_alphabet(tgds)
        # 2 body atoms × (empty P + one existential w) = 4.
        assert len(symbols) == 4

    def test_pass_on_positions_are_existential(self):
        tgds = parse_tgds(["R(x,y) -> T(x,w,w)"])
        symbols = caterpillar_alphabet(tgds)
        pass_ons = [s for s in symbols if s.is_pass_on]
        assert len(pass_ons) == 1
        assert pass_ons[0].passes_on == frozenset({2, 3})

    def test_no_existentials_no_pass_on(self):
        tgds = parse_tgds(["R(x,y) -> S(y,x)"])
        symbols = caterpillar_alphabet(tgds)
        assert all(not s.is_pass_on for s in symbols)

    def test_two_existentials_two_options(self):
        tgds = parse_tgds(["R(x) -> T(x,w,v)"])
        symbols = caterpillar_alphabet(tgds)
        pass_ons = {s.passes_on for s in symbols if s.is_pass_on}
        assert pass_ons == {frozenset({2}), frozenset({3})}

    def test_symbol_accessors(self):
        tgds = parse_tgds(["R(x,y), P(y,z) -> T(x,y,w)"])
        symbol = CaterpillarSymbol(0, 1, frozenset())
        assert symbol.tgd(tgds) is tgds[0]
        assert symbol.gamma(tgds).predicate == "P"

    def test_symbols_hashable_distinct(self):
        tgds = parse_tgds(["R(x,y) -> R(y,z)"])
        symbols = caterpillar_alphabet(tgds)
        assert len(set(symbols)) == len(symbols)
