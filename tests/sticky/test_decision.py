"""Tests for the complete sticky decision procedure (Theorem 6.1)."""

import pytest

from repro.chase.restricted import restricted_chase
from repro.sticky.decision import decide_sticky, instantiate_lasso, witness_from_lasso
from repro.termination.verdict import Status
from repro.tgds.tgd import parse_tgds


class TestKnownTerminating:
    @pytest.mark.parametrize(
        "rules",
        [
            ["R(x,y) -> R(x,z)"],                       # intro example
            ["P(x) -> Q(x,y)", "Q(x,y) -> S(y)"],       # weakly acyclic
            ["P(x) -> R(x,y)", "R(x,y) -> R(y,x)"],     # swap closes the loop
            ["T(x,y,z) -> S(y,w)", "R(x,y), P(y,z) -> T(x,y,w)"],  # §2 sticky
            ["R(x,y) -> S(y,x)"],                       # full TGDs
        ],
    )
    def test_all_terminating(self, rules):
        verdict = decide_sticky(parse_tgds(rules))
        assert verdict.status == Status.ALL_TERMINATING
        assert verdict.certificate["automaton_empty"]


class TestKnownDiverging:
    @pytest.mark.parametrize(
        "rules",
        [
            ["R(x,y) -> R(y,z)"],                       # shift chain
            ["R(x,y) -> S(y,z)", "S(x,y) -> R(y,z)"],   # alternating chain
            ["A(x) -> R(x,y)", "R(x,y) -> A(y)"],       # feed-forward loop
        ],
    )
    def test_not_all_terminating(self, rules):
        tgds = parse_tgds(rules)
        verdict = decide_sticky(tgds)
        assert verdict.status == Status.NOT_ALL_TERMINATING
        witness = verdict.certificate["witness"]
        # The replay is a genuine restricted chase derivation.
        witness.derivation.validate(tgds)
        assert len(witness.derivation.steps) >= len(witness.lasso.cycle) * 3

    def test_witness_database_diverges_under_engine(self, diverging_linear):
        """Independent cross-check: run the ordinary engine on the witness."""
        verdict = decide_sticky(diverging_linear)
        witness = verdict.certificate["witness"]
        run = restricted_chase(witness.initial, diverging_linear, strategy="lifo", max_steps=40)
        assert not run.terminated

    def test_witness_clean_database(self, diverging_linear):
        verdict = decide_sticky(diverging_linear)
        witness = verdict.certificate["witness"]
        assert witness.clean_database
        assert witness.initial.is_database()


class TestLassoInstantiation:
    def test_longer_replay_extends(self, diverging_linear):
        family_verdict = decide_sticky(diverging_linear)
        witness = family_verdict.certificate["witness"]
        longer = witness_from_lasso(
            diverging_linear,
            witness.start_etype,
            witness.start_positions,
            witness.lasso,
            cycles=6,
        )
        longer.derivation.validate(diverging_linear)
        assert len(longer.derivation.steps) > len(witness.derivation.steps)

    def test_leg_recycling_keeps_instance_finite(self):
        tgds = parse_tgds(["A(x) -> R(x,y)", "R(x,y) -> A(y)"])
        verdict = decide_sticky(tgds)
        witness = verdict.certificate["witness"]
        short = witness_from_lasso(
            tgds, witness.start_etype, witness.start_positions, witness.lasso, cycles=2
        )
        long = witness_from_lasso(
            tgds, witness.start_etype, witness.start_positions, witness.lasso, cycles=8
        )
        # Recycled legs: the initial instance does not grow with the cycles.
        assert len(long.initial) == len(short.initial)

    def test_instantiate_reports_null_freedom(self, diverging_linear):
        verdict = decide_sticky(diverging_linear)
        witness = verdict.certificate["witness"]
        initial, triggers, null_free = instantiate_lasso(
            diverging_linear, witness.start_etype, witness.lasso, cycles=2
        )
        assert null_free
        assert triggers


class TestNonStickyRejected:
    def test_value_error(self, sticky_pair):
        _, non_sticky = sticky_pair
        with pytest.raises(ValueError, match="not sticky"):
            decide_sticky(non_sticky)
