"""Tests for caterpillar extraction from derivations (§6.2 Steps 1–2)."""

import pytest

from repro.core.parsing import parse_database
from repro.core.terms import Term
from repro.chase.restricted import restricted_chase
from repro.sticky.extraction import (
    ExtractionError,
    TermGenealogy,
    extract_proto_caterpillar,
)
from repro.tgds.tgd import parse_tgds


@pytest.fixture
def shift_run(diverging_linear):
    db = parse_database("R(a,b)")
    run = restricted_chase(db, diverging_linear, strategy="lifo", max_steps=12)
    return db, diverging_linear, run.derivation


class TestTermGenealogy:
    def test_birth_steps_monotone(self, shift_run):
        db, tgds, derivation = shift_run
        genealogy = TermGenealogy(db, derivation)
        births = sorted(genealogy.birth_step.values())
        assert births == list(range(len(derivation.steps)))

    def test_ranks_increase_along_chain(self, shift_run):
        db, tgds, derivation = shift_run
        genealogy = TermGenealogy(db, derivation)
        chain = genealogy.longest_favourite_chain()
        ranks = [genealogy.rank(term) for term in chain]
        assert ranks == list(range(len(chain)))

    def test_database_terms_rank_zero(self, shift_run):
        db, tgds, derivation = shift_run
        genealogy = TermGenealogy(db, derivation)
        assert all(genealogy.rank(t) == 0 for t in db.domain())

    def test_favourite_parent_has_rank_minus_one(self, shift_run):
        db, tgds, derivation = shift_run
        genealogy = TermGenealogy(db, derivation)
        for null in genealogy.birth_step:
            parent = genealogy.favourite_parent(null)
            if parent is not None:
                assert genealogy.rank(parent) == genealogy.rank(null) - 1

    def test_term_parents_are_frontier_terms(self, shift_run):
        db, tgds, derivation = shift_run
        genealogy = TermGenealogy(db, derivation)
        for null, step in genealogy.birth_step.items():
            trigger = derivation.steps[step]
            assert genealogy.term_parents(null) == set(
                trigger.result_frontier_terms()
            )


class TestExtraction:
    def test_shift_chain_yields_valid_proto(self, shift_run):
        db, tgds, derivation = shift_run
        prefix, births, positions = extract_proto_caterpillar(db, tgds, derivation)
        assert prefix.proto_violations() == []
        assert prefix.caterpillar_violations() == []
        assert prefix.connectedness_violations(births, positions) == []

    def test_births_aligned(self, shift_run):
        db, tgds, derivation = shift_run
        prefix, births, positions = extract_proto_caterpillar(db, tgds, derivation)
        assert births[0] == 0
        assert len(births) == len(positions)
        for step, posset in zip(births, positions):
            atom = prefix.body[step]
            terms = {atom[p] for p in posset}
            assert len(terms) == 1

    def test_with_side_legs(self):
        tgds = parse_tgds(["A(x), R(x,y) -> R(y,z)", "R(x,y) -> A(y)"])
        db = parse_database("A(a), R(a,b)")
        run = restricted_chase(db, tgds, strategy="lifo", max_steps=16)
        prefix, births, positions = extract_proto_caterpillar(db, tgds, run.derivation)
        assert prefix.proto_violations() == []
        assert prefix.connectedness_violations(births, positions) == []
        assert prefix.legs  # the A-atoms feed the R-chain from the side

    def test_too_short_prefix_raises(self, diverging_linear):
        db = parse_database("R(a,b)")
        run = restricted_chase(db, diverging_linear, max_steps=1)
        with pytest.raises(ExtractionError):
            extract_proto_caterpillar(db, diverging_linear, run.derivation, min_chain=5)

    def test_terminating_set_has_no_chain(self, intro_tgds, intro_database):
        run = restricted_chase(intro_database, intro_tgds)
        with pytest.raises(ExtractionError):
            extract_proto_caterpillar(intro_database, intro_tgds, run.derivation)
