"""Tests for the caterpillar Büchi automaton family (Appendix D.2)."""

import pytest

from repro.core.equality import EqualityType
from repro.sticky.alphabet import CaterpillarSymbol
from repro.sticky.automaton import CaterpillarAutomatonFamily
from repro.tgds.tgd import parse_tgds


@pytest.fixture
def linear_family(diverging_linear):
    return CaterpillarAutomatonFamily(diverging_linear)


class TestStartPairs:
    def test_start_pairs_cover_all_classes(self, linear_family):
        pairs = list(linear_family.start_pairs())
        # R/2 has 2 equality types; type {1}{2} contributes 2 classes,
        # type {1,2} contributes 1 class: 3 pairs.
        assert len(pairs) == 3

    def test_non_sticky_rejected(self, sticky_pair):
        _, non_sticky = sticky_pair
        with pytest.raises(ValueError, match="sticky"):
            CaterpillarAutomatonFamily(non_sticky)


class TestTransitions:
    def test_predicate_mismatch_dies(self):
        tgds = parse_tgds(["R(x,y) -> R(y,z)", "S(x) -> R(x,z)"])
        family = CaterpillarAutomatonFamily(tgds)
        etype = EqualityType("R", [frozenset({1}), frozenset({2})])
        state = family.initial_state(etype, frozenset({2}))
        # Symbol for the S-bodied TGD cannot fire from an R-atom.
        symbol = CaterpillarSymbol(1, 0, frozenset())
        assert family.transition(state, symbol) is None

    def test_repeated_gamma_variable_needs_equal_positions(self):
        tgds = parse_tgds(["R(x,x) -> R(x,z)"])
        family = CaterpillarAutomatonFamily(tgds)
        # γ = R(x,x) cannot match an atom whose positions carry distinct
        # terms (the A_pc homomorphism condition).
        distinct = EqualityType("R", [frozenset({1}), frozenset({2})])
        symbol = CaterpillarSymbol(0, 0, frozenset({2}))
        dead = family.transition(family.initial_state(distinct, frozenset({1})), symbol)
        assert dead is None
        # The merged start matches γ but dies too: nothing is marked in this
        # set, so the would-be relay position is immortal — and indeed the
        # set is in CT_res_∀∀ (R(u,u) always witnesses its own head).
        merged = EqualityType("R", [frozenset({1, 2})])
        also_dead = family.transition(
            family.initial_state(merged, frozenset({1, 2})), symbol
        )
        assert also_dead is None
        assert family.is_empty()

    def test_relay_loss_rejected(self, diverging_linear, linear_family):
        # Relay at position 1 of R: R(x,y) -> R(y,z) drops x, losing it.
        etype = EqualityType("R", [frozenset({1}), frozenset({2})])
        state = linear_family.initial_state(etype, frozenset({1}))
        symbol = CaterpillarSymbol(0, 0, frozenset())
        assert linear_family.transition(state, symbol) is None

    def test_relay_propagation(self, linear_family):
        # Relay at position 2 (y) survives into position 1 of the new atom.
        etype = EqualityType("R", [frozenset({1}), frozenset({2})])
        state = linear_family.initial_state(etype, frozenset({2}))
        symbol = CaterpillarSymbol(0, 0, frozenset())
        nxt = linear_family.transition(state, symbol)
        assert nxt is not None
        assert nxt.pi1 == frozenset({1})
        assert not nxt.accepting

    def test_pass_on_accepting(self, linear_family):
        etype = EqualityType("R", [frozenset({1}), frozenset({2})])
        state = linear_family.initial_state(etype, frozenset({2}))
        symbol = CaterpillarSymbol(0, 0, frozenset({2}))
        nxt = linear_family.transition(state, symbol)
        assert nxt is not None
        assert nxt.accepting
        assert nxt.pi1 == frozenset({2})
        assert nxt.pi2 == frozenset({1, 2})

    def test_self_stop_rejected(self):
        """R(x,y) -> ∃z R(x,z): the fresh atom is stopped by its own
        predecessor pattern (same frontier), so no caterpillar step exists
        — exactly why the intro example is in CT_res_∀∀."""
        tgds = parse_tgds(["R(x,y) -> R(x,z)"])
        family = CaterpillarAutomatonFamily(tgds)
        for etype, pi0 in family.start_pairs():
            state = family.initial_state(etype, pi0)
            for symbol in family.alphabet:
                nxt = family.transition(state, symbol)
                # Either dead immediately, or the Θ-check kills successors;
                # the automaton must be empty overall.
            assert family.component(etype, pi0).is_empty()


class TestEmptiness:
    def test_diverging_linear_nonempty(self, linear_family):
        counterexample = linear_family.find_counterexample()
        assert counterexample is not None
        etype, pi0, lasso = counterexample
        assert lasso.cycle

    def test_terminating_sets_empty(self):
        for rules in (
            ["R(x,y) -> R(x,z)"],
            ["P(x) -> Q(x,y)", "Q(x,y) -> S(y)"],
            ["P(x) -> R(x,y)", "R(x,y) -> R(y,x)"],
        ):
            family = CaterpillarAutomatonFamily(parse_tgds(rules))
            assert family.is_empty(), rules

    def test_total_reachable_states_positive(self, linear_family):
        assert linear_family.total_reachable_states() >= 3
