"""Tests for explicit caterpillar objects (Definitions 6.2–6.8)."""

import pytest

from repro.sticky.caterpillar import (
    CaterpillarPrefix,
    pass_on_data,
    prefix_from_witness,
)
from repro.sticky.decision import decide_sticky
from repro.tgds.tgd import parse_tgds


@pytest.fixture
def linear_witness(diverging_linear):
    verdict = decide_sticky(diverging_linear)
    return verdict.certificate["witness"]


@pytest.fixture
def linear_prefix(diverging_linear, linear_witness):
    return prefix_from_witness(diverging_linear, linear_witness)


class TestFromWitness:
    def test_prefix_shape(self, linear_prefix, linear_witness):
        assert len(linear_prefix.body) == len(linear_witness.derivation.steps) + 1

    def test_proto_conditions_hold(self, linear_prefix):
        assert linear_prefix.proto_violations() == []

    def test_caterpillar_conditions_hold(self, linear_prefix):
        assert linear_prefix.caterpillar_violations() == []

    def test_freeness_holds(self, linear_prefix):
        assert linear_prefix.freeness_violations() == []


class TestConnectedness:
    def test_relay_race_valid(self, diverging_linear, linear_witness, linear_prefix):
        word = linear_witness.lasso.word_prefix(len(linear_prefix.triggers))
        steps, positions = pass_on_data(word)
        birth_steps = [0] + steps
        relay_positions = [linear_witness.start_positions] + positions
        violations = linear_prefix.connectedness_violations(birth_steps, relay_positions)
        assert violations == []

    def test_wrong_relay_positions_detected(self, diverging_linear, linear_witness, linear_prefix):
        word = linear_witness.lasso.word_prefix(len(linear_prefix.triggers))
        steps, positions = pass_on_data(word)
        # Claim the relay never passes on: the single term must then
        # survive the whole body — false for the shift chain.
        violations = linear_prefix.connectedness_violations(
            [0], [linear_witness.start_positions]
        )
        assert violations

    def test_max_pass_on_gap(self, linear_witness, linear_prefix):
        word = linear_witness.lasso.word_prefix(len(linear_prefix.triggers))
        steps, _ = pass_on_data(word)
        gap = linear_prefix.max_pass_on_gap(steps)
        # Uniform connectedness: bounded by the automaton cycle length + 1.
        assert gap <= len(linear_witness.lasso.cycle) + len(linear_witness.lasso.prefix) + 1


class TestValidationCatchesCorruption:
    def test_shuffled_triggers_violate_proto(self, diverging_linear, linear_prefix):
        if len(linear_prefix.triggers) < 2:
            pytest.skip("need two steps")
        corrupted = CaterpillarPrefix(
            linear_prefix.tgds,
            linear_prefix.legs,
            linear_prefix.body,
            list(reversed(linear_prefix.triggers)),
            linear_prefix.gamma_indices,
        )
        assert corrupted.proto_violations()

    def test_mismatched_lengths_rejected(self, linear_prefix):
        with pytest.raises(ValueError):
            CaterpillarPrefix(
                linear_prefix.tgds,
                linear_prefix.legs,
                linear_prefix.body,
                linear_prefix.triggers[:-1],
                linear_prefix.gamma_indices,
            )

    def test_alternating_chain_prefix_valid(self):
        tgds = parse_tgds(["R(x,y) -> S(y,z)", "S(x,y) -> R(y,z)"])
        verdict = decide_sticky(tgds)
        prefix = prefix_from_witness(tgds, verdict.certificate["witness"])
        assert prefix.proto_violations() == []
        assert prefix.caterpillar_violations() == []
        assert prefix.freeness_violations() == []
