"""The injectable obs clock: real delegation and FakeClock semantics."""

import time

from repro.obs import clock
from repro.obs.clock import Clock, FakeClock


class TestRealClock:
    def test_monotonic_tracks_time(self):
        real = Clock()
        a = real.monotonic()
        b = real.monotonic()
        assert b >= a

    def test_perf_counter_tracks_time(self):
        real = Clock()
        a = real.perf_counter()
        b = real.perf_counter()
        assert b >= a

    def test_module_functions_use_installed_clock(self):
        # The default clock is the real one: readings are close to time's.
        assert abs(clock.monotonic() - time.monotonic()) < 5.0


class TestFakeClock:
    def test_starts_at_given_time(self):
        fake = FakeClock(start=100.0)
        assert fake.monotonic() == 100.0
        assert fake.perf_counter() == 100.0

    def test_advance_moves_both_time_bases(self):
        fake = FakeClock()
        fake.advance(2.5)
        assert fake.monotonic() == 2.5
        assert fake.perf_counter() == 2.5

    def test_sleep_advances_instead_of_blocking(self):
        fake = FakeClock()
        start = time.perf_counter()
        fake.sleep(60.0)
        assert time.perf_counter() - start < 1.0  # did not actually sleep
        assert fake.monotonic() == 60.0

    def test_sleep_records_requested_durations(self):
        fake = FakeClock()
        fake.sleep(0.5)
        fake.sleep(1.5)
        assert fake.slept == [0.5, 1.5]


class TestInstallation:
    def test_set_clock_returns_previous_and_reroutes(self, fake_clock):
        fake_clock.advance(42.0)
        assert clock.monotonic() == 42.0
        assert clock.perf_counter() == 42.0
        clock.sleep(8.0)
        assert clock.monotonic() == 50.0
        assert fake_clock.slept == [8.0]

    def test_restore_goes_back_to_real_time(self):
        fake = FakeClock()
        previous = clock.set_clock(fake)
        clock.set_clock(previous)
        assert abs(clock.monotonic() - time.monotonic()) < 5.0
