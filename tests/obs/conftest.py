"""Fixtures for the observability suite: swap in a FakeClock, restore after."""

import pytest

from repro.obs import clock, metrics


@pytest.fixture
def fake_clock():
    """Install a FakeClock process-wide for one test; restore on exit."""
    fake = clock.FakeClock()
    previous = clock.set_clock(fake)
    try:
        yield fake
    finally:
        clock.set_clock(previous)


@pytest.fixture
def stats_recorder():
    """Install a StatsRecorder process-wide for one test; restore on exit."""
    recorder = metrics.set_recorder(metrics.StatsRecorder())
    try:
        yield recorder
    finally:
        metrics.set_recorder(None)
