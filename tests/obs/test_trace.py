"""Span tracing: the off-path, the Chrome trace file, and its validator."""

import json

from repro.obs import trace


def read_trace(path):
    return json.loads(path.read_text())


class TestDisabledPath:
    def test_span_returns_shared_null_span(self):
        assert not trace.tracing()
        first = trace.span("round.apply")
        second = trace.span("round.discover", batch=3)
        assert first is second  # the shared no-op singleton, no allocation
        with first:
            pass

    def test_instant_is_a_no_op(self):
        trace.instant("round.cut", reason="budget:wall")  # must not raise

    def test_stop_without_start_returns_none(self):
        assert trace.stop_trace() is None


class TestTraceFile:
    def test_spans_write_complete_events(self, tmp_path):
        path = tmp_path / "out.json"
        trace.start_trace(str(path))
        try:
            with trace.span("chase.run", kind="semi_naive"):
                with trace.span("round.discover", delta=4):
                    pass
            trace.instant("round.cut", reason="budget:wall")
        finally:
            written = trace.stop_trace()
        assert written == str(path)
        document = read_trace(path)
        assert trace.validate_trace(document) == []
        events = document["traceEvents"]
        names = [event["name"] for event in events]
        assert set(names) == {"chase.run", "round.discover", "round.cut"}
        complete = [e for e in events if e["ph"] == "X"]
        assert all(e["dur"] >= 0 for e in complete)
        by_name = {e["name"]: e for e in events}
        assert by_name["chase.run"]["args"] == {"kind": "semi_naive"}
        assert by_name["round.cut"]["ph"] == "i"

    def test_nesting_keeps_outer_span_longer(self, tmp_path, fake_clock):
        path = tmp_path / "out.json"
        trace.start_trace(str(path))
        try:
            with trace.span("chase.run"):
                fake_clock.advance(1.0)
                with trace.span("round.apply"):
                    fake_clock.advance(2.0)
                fake_clock.advance(1.0)
        finally:
            trace.stop_trace()
        by_name = {e["name"]: e for e in read_trace(path)["traceEvents"]}
        assert by_name["chase.run"]["dur"] == 4e6  # microseconds
        assert by_name["round.apply"]["dur"] == 2e6
        assert by_name["round.apply"]["ts"] >= by_name["chase.run"]["ts"]

    def test_stop_is_idempotent(self, tmp_path):
        path = tmp_path / "out.json"
        trace.start_trace(str(path))
        with trace.span("chase.run"):
            pass
        assert trace.stop_trace() == str(path)
        assert trace.stop_trace() is None
        assert len(read_trace(path)["traceEvents"]) == 1

    def test_restart_retargets_but_keeps_buffer(self, tmp_path):
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        trace.start_trace(str(first))
        try:
            with trace.span("round.plan"):
                pass
            trace.start_trace(str(second))  # re-target mid-flight
            with trace.span("round.exec"):
                pass
        finally:
            written = trace.stop_trace()
        assert written == str(second)
        assert not first.exists()
        names = {e["name"] for e in read_trace(second)["traceEvents"]}
        assert names == {"round.plan", "round.exec"}

    def test_suspended_mutes_spans_then_restores(self, tmp_path):
        path = tmp_path / "out.json"
        trace.start_trace(str(path))
        try:
            with trace.span("round.apply"):
                pass
            with trace.suspended():
                assert not trace.tracing()
                with trace.span("round.discover"):
                    pass
                trace.instant("round.cut")
            assert trace.tracing()
            with trace.span("round.merge"):
                pass
        finally:
            trace.stop_trace()
        names = [e["name"] for e in read_trace(path)["traceEvents"]]
        assert names == ["round.apply", "round.merge"]

    def test_suspended_while_off_is_a_no_op(self):
        with trace.suspended():
            assert not trace.tracing()
        assert not trace.tracing()

    def test_env_init_starts_tracing(self, tmp_path):
        path = tmp_path / "env.json"
        trace.init_from_env({"CHASE_TRACE": str(path)})
        try:
            assert trace.tracing()
        finally:
            trace.stop_trace()
        assert trace.validate_trace(read_trace(path)) == []

    def test_env_init_without_path_stays_off(self):
        trace.init_from_env({})
        assert not trace.tracing()


class TestValidator:
    def test_accepts_array_form(self):
        events = [{"name": "a", "ph": "i", "ts": 0.0, "pid": 1, "tid": 2}]
        assert trace.validate_trace(events) == []

    def test_rejects_non_trace_documents(self):
        assert trace.validate_trace("nope")
        assert trace.validate_trace({"foo": 1})
        assert trace.validate_trace({"traceEvents": "nope"})

    def test_rejects_malformed_events(self):
        problems = trace.validate_trace(
            {
                "traceEvents": [
                    {"ph": "X", "ts": 0.0, "pid": 1, "tid": 2, "dur": 1.0},  # no name
                    {"name": "b", "ph": "X", "ts": 0.0, "pid": 1, "tid": 2, "dur": -1},
                    "not-an-object",
                ]
            }
        )
        assert len(problems) == 3
