"""The Recorder protocol, the module-flag hot path, and CHASE_METRICS."""

from repro.obs import metrics
from repro.obs.metrics import Histogram, NullRecorder, StatsRecorder


class TestNullRecorder:
    def test_accepts_everything_silently(self):
        null = NullRecorder()
        null.counter("a")
        null.gauge("b", 2.0)
        null.observe("c", 0.5)
        with null.timer("d"):
            pass

    def test_is_the_default(self):
        assert isinstance(metrics.get_recorder(), NullRecorder)
        assert not metrics.ENABLED


class TestStatsRecorder:
    def test_counters_accumulate(self):
        recorder = StatsRecorder()
        recorder.counter("chase.rounds")
        recorder.counter("chase.rounds", 2)
        assert recorder.counters == {"chase.rounds": 3}

    def test_gauges_last_value_wins(self):
        recorder = StatsRecorder()
        recorder.gauge("queue.depth", 7)
        recorder.gauge("queue.depth", 2)
        assert recorder.gauges == {"queue.depth": 2}

    def test_histograms_summarize(self):
        recorder = StatsRecorder()
        for value in (1.0, 3.0, 2.0):
            recorder.observe("round.delta", value)
        histogram = recorder.histograms["round.delta"]
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.mean == 2.0
        assert histogram.min == 1.0 and histogram.max == 3.0

    def test_timer_observes_block_duration(self, fake_clock):
        recorder = StatsRecorder()
        with recorder.timer("round.seconds"):
            fake_clock.advance(0.25)
        histogram = recorder.histograms["round.seconds"]
        assert histogram.count == 1
        assert histogram.total == 0.25

    def test_as_dict_round_trips_to_plain_data(self):
        recorder = StatsRecorder()
        recorder.counter("a")
        recorder.observe("b", 1.0)
        rendered = recorder.as_dict()
        assert rendered["counters"] == {"a": 1}
        assert rendered["histograms"]["b"]["count"] == 1


class TestHistogram:
    def test_empty_histogram_mean_is_zero(self):
        histogram = Histogram()
        assert histogram.mean == 0.0
        assert histogram.as_dict()["min"] is None


class TestModuleSwitch:
    def test_set_recorder_flips_enabled(self):
        try:
            installed = metrics.set_recorder(StatsRecorder())
            assert metrics.ENABLED and metrics.metrics_enabled()
            assert metrics.get_recorder() is installed
        finally:
            metrics.set_recorder(None)
        assert not metrics.ENABLED
        assert isinstance(metrics.get_recorder(), NullRecorder)

    def test_module_counter_routes_when_enabled(self, stats_recorder):
        metrics.counter("chase.rounds")
        metrics.gauge("depth", 4)
        metrics.observe("delta", 2.0)
        assert stats_recorder.counters == {"chase.rounds": 1}
        assert stats_recorder.gauges == {"depth": 4}
        assert stats_recorder.histograms["delta"].count == 1

    def test_module_counter_is_inert_when_disabled(self):
        spy = StatsRecorder()
        # Not installed: the module-level guard must not touch any recorder.
        metrics.counter("chase.rounds")
        assert spy.counters == {}
        assert not metrics.ENABLED


class TestEnvInit:
    def test_env_switch_installs_stats_recorder(self):
        try:
            metrics.init_from_env({"CHASE_METRICS": "1"})
            assert isinstance(metrics.get_recorder(), StatsRecorder)
        finally:
            metrics.set_recorder(None)

    def test_zero_and_empty_stay_disabled(self):
        metrics.init_from_env({"CHASE_METRICS": "0"})
        assert not metrics.ENABLED
        metrics.init_from_env({})
        assert not metrics.ENABLED
