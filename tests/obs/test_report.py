"""The report CLI: stats rendering and Chrome-trace validation."""

import io
import json
from pathlib import Path

from repro.obs.report import check_trace, main, print_report


def sample_report():
    return {
        "mode": "quick",
        "acceptance": {"pass": True, "cpu_count": 4},
        "seminaive_speedups": [
            {
                "workload": "seminaive_dense",
                "size": 64,
                "speedup": 2.8,
                "stats": {
                    "rounds": 32,
                    "triggers_discovered": 4096,
                    "triggers_fired": 3072,
                    "triggers_vacuous": 0,
                    "cache_hit_rate": 0.25,
                    "max_delta": 128,
                    "per_tgd_fired": {"s1": 3072},
                },
            }
        ],
        "obs_overheads": [
            {
                "workload": "obs_dense",
                "size": 64,
                "overhead_ratio": 1.01,
                "stats": {"rounds": 32, "retries": 1, "budget_cuts": 2},
            }
        ],
    }


def valid_trace():
    return {
        "traceEvents": [
            {
                "name": "round.discover",
                "ph": "X",
                "ts": 0.0,
                "dur": 5.0,
                "pid": 1,
                "tid": 2,
            }
        ]
    }


class TestPrintReport:
    def test_renders_rows_with_stats(self):
        out = io.StringIO()
        print_report(sample_report(), out=out)
        text = out.getvalue()
        assert "seminaive_dense" in text
        assert "speedup=2.8x" in text
        assert "fired=3072" in text
        assert "cache_hit=0.250" in text
        assert "overhead=1.01x" in text
        assert "retries=1" in text and "cuts=2" in text
        assert "s1: 3072" in text
        assert "acceptance: PASS" in text

    def test_tolerates_rows_without_stats(self):
        out = io.StringIO()
        print_report(
            {"speedups": [{"workload": "ablation_engine", "size": 8, "speedup": 7.0}]},
            out=out,
        )
        assert "(no stats recorded)" in out.getvalue()


class TestCheckTrace:
    def test_valid_trace_passes(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(valid_trace()))
        out = io.StringIO()
        assert check_trace(path, out=out) == 0
        assert "OK" in out.getvalue()
        assert "round.discover" in out.getvalue()

    def test_missing_file_fails(self, tmp_path):
        assert check_trace(tmp_path / "absent.json", out=io.StringIO()) == 1

    def test_non_json_fails(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text("{not json")
        assert check_trace(path, out=io.StringIO()) == 1

    def test_empty_trace_fails(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"traceEvents": []}))
        assert check_trace(path, out=io.StringIO()) == 1

    def test_malformed_events_fail(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
        assert check_trace(path, out=io.StringIO()) == 1


class TestMain:
    def test_report_and_trace_together(self, tmp_path, capsys):
        report = tmp_path / "BENCH_chase.json"
        report.write_text(json.dumps(sample_report()))
        trace_path = tmp_path / "trace.json"
        trace_path.write_text(json.dumps(valid_trace()))
        assert main([str(report), "--validate-trace", str(trace_path)]) == 0
        captured = capsys.readouterr().out
        assert "seminaive_dense" in captured and "OK" in captured

    def test_missing_report_fails(self, tmp_path):
        assert main([str(tmp_path / "absent.json")]) == 1

    def test_bad_trace_fails_even_with_good_report(self, tmp_path):
        report = tmp_path / "BENCH_chase.json"
        report.write_text(json.dumps(sample_report()))
        assert main([str(report), "--validate-trace", str(tmp_path / "no.json")]) == 1
