"""ChaseStats accounting, derived metrics, invariants, and the bench row."""

import json
from types import SimpleNamespace

from repro.obs.stats import BENCH_STATS_FIELDS, ChaseStats, bench_stats_row


def fired_trigger(name="t1"):
    # Only the TGD name matters to the per-TGD tally.
    return SimpleNamespace(tgd=SimpleNamespace(name=name))


class TestRecording:
    def test_record_round_appends_delta(self):
        stats = ChaseStats()
        stats.record_round(5)
        stats.record_round(0)
        assert stats.rounds == 2
        assert stats.delta_sizes == [5, 0]

    def test_record_fired_tallies_per_tgd(self):
        stats = ChaseStats()
        stats.triggers_discovered = 3
        stats.record_fired(fired_trigger("a"))
        stats.record_fired(fired_trigger("a"))
        stats.record_fired(fired_trigger("b"))
        assert stats.triggers_fired == 3
        assert stats.per_tgd_fired == {"a": 2, "b": 1}

    def test_record_cut_keeps_reasons(self):
        stats = ChaseStats()
        stats.record_cut("budget:wall")
        stats.record_cut("budget:rounds")
        assert stats.budget_cuts == 2
        assert stats.cut_reasons == ["budget:wall", "budget:rounds"]


class TestDerived:
    def test_cache_rates(self):
        stats = ChaseStats()
        assert stats.cache_hit_rate() is None
        stats.cache_lookups = 10
        stats.cache_hits = 4
        assert stats.cache_misses == 6
        assert stats.cache_hit_rate() == 0.4

    def test_parallel_efficiency_needs_pool_rounds(self):
        stats = ChaseStats()
        assert stats.parallel_efficiency() is None
        stats.pool_workers = 4
        stats.parallel_wall_seconds = 2.0
        stats.worker_busy_seconds = 4.0
        assert stats.parallel_efficiency() == 0.5

    def test_serial_run_has_no_efficiency(self):
        stats = ChaseStats()
        stats.pool_workers = 1
        stats.parallel_wall_seconds = 2.0
        stats.worker_busy_seconds = 2.0
        assert stats.parallel_efficiency() is None


class TestValidate:
    def test_fresh_stats_are_valid(self):
        assert ChaseStats().validate() == []

    def test_fired_beyond_discovered_is_flagged(self):
        stats = ChaseStats()
        stats.record_fired(fired_trigger())
        assert any("exceeds discovered" in p for p in stats.validate())

    def test_cache_hits_beyond_lookups_is_flagged(self):
        stats = ChaseStats()
        stats.cache_lookups = 1
        stats.cache_hits = 2
        assert any("exceed lookups" in p for p in stats.validate())

    def test_per_tgd_mismatch_is_flagged(self):
        stats = ChaseStats()
        stats.triggers_discovered = 1
        stats.triggers_fired = 1  # without the per-TGD tally
        assert any("per-TGD" in p for p in stats.validate())

    def test_cut_count_mismatch_is_flagged(self):
        stats = ChaseStats()
        stats.budget_cuts = 1
        assert any("cut_reasons" in p for p in stats.validate())

    def test_round_delta_mismatch_is_flagged(self):
        stats = ChaseStats()
        stats.rounds = 2
        stats.delta_sizes = [1]
        assert any("delta_sizes" in p for p in stats.validate())

    def test_negative_counter_is_flagged(self):
        stats = ChaseStats()
        stats.triggers_vacuous = -1
        assert any("negative" in p for p in stats.validate())


class TestRendering:
    def test_as_dict_is_json_ready(self):
        stats = ChaseStats(kind="semi_naive")
        stats.triggers_discovered = 2
        stats.record_fired(fired_trigger())
        stats.record_round(1)
        rendered = stats.as_dict()
        json.dumps(rendered)  # must serialize without custom encoders
        assert rendered["kind"] == "semi_naive"
        assert rendered["cache_hit_rate"] is None

    def test_bench_row_has_the_published_fields(self):
        stats = ChaseStats()
        stats.triggers_discovered = 4
        stats.record_fired(fired_trigger())
        stats.record_round(3)
        stats.record_round(1)
        row = bench_stats_row(stats)
        for field in BENCH_STATS_FIELDS:
            assert field in row, field
        assert row["max_delta"] == 3
        assert row["mean_delta"] == 2.0

    def test_bench_row_of_empty_run(self):
        row = bench_stats_row(ChaseStats())
        assert row["max_delta"] == 0
        assert row["mean_delta"] == 0.0

    def test_summary_mentions_the_headline_numbers(self):
        stats = ChaseStats(kind="oblivious")
        stats.triggers_discovered = 2
        stats.record_fired(fired_trigger())
        stats.record_cut("budget:wall")
        text = stats.summary()
        assert "fired=1" in text and "budget_cuts=1" in text
        assert "oblivious" in repr(stats)


class TestAbsorb:
    def test_absorb_engine_folds_witness_counters(self):
        class Witnesses:
            lookups = 7
            hits = 3

        class Engine:
            witnesses = Witnesses()

        stats = ChaseStats()
        stats.absorb_engine(Engine())
        assert stats.cache_lookups == 7 and stats.cache_hits == 3

    def test_absorb_engine_tolerates_disabled_cache(self):
        class Engine:
            witnesses = None

        stats = ChaseStats()
        stats.absorb_engine(Engine())
        assert stats.cache_lookups == 0

    def test_absorb_matcher_folds_pool_counters(self):
        class Matcher:
            chunk_retries = 1
            fresh_pools = 2
            backend_fallbacks = 1
            rounds_parallel = 5
            rounds_serial = 3
            workers = 4
            busy_seconds = 1.5
            pool_wall_seconds = 0.5
            merge_seconds = 0.25
            faults = {"kill": 2, "delay": 0}

        stats = ChaseStats()
        stats.absorb_matcher(Matcher())
        assert stats.retries == 1
        assert stats.fresh_pools == 2
        assert stats.pool_fallbacks == 1
        assert stats.rounds_parallel == 5 and stats.rounds_serial == 3
        assert stats.pool_workers == 4
        assert stats.worker_busy_seconds == 1.5
        assert stats.parallel_wall_seconds == 0.5
        assert stats.merge_seconds == 0.25
        assert stats.faults == {"kill": 2}  # zero-count shapes are dropped
