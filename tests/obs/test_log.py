"""Logger factory naming and the structured-event convention."""

import logging

from repro.obs.log import get_logger, log_event


class TestGetLogger:
    def test_repro_names_pass_through(self):
        assert get_logger("repro.chase.engine").name == "repro.chase.engine"
        assert get_logger("repro").name == "repro"

    def test_foreign_names_are_filed_under_repro(self):
        assert get_logger("__main__").name == "repro.__main__"
        assert get_logger("benchmarks.harness").name == "repro.benchmarks.harness"

    def test_root_has_null_handler(self):
        # The library never configures its embedder's logging: the repro
        # root carries a NullHandler so unhandled records stay silent.
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)


class TestLogEvent:
    def test_renders_event_and_fields(self, caplog):
        logger = get_logger("repro.obs.test")
        with caplog.at_level(logging.INFO, logger="repro.obs.test"):
            log_event(logger, logging.INFO, "round.cut", reason="budget:wall", n=3)
        assert len(caplog.records) == 1
        record = caplog.records[0]
        assert record.getMessage() == "round.cut reason='budget:wall' n=3"

    def test_attaches_structured_attributes(self, caplog):
        logger = get_logger("repro.obs.test")
        with caplog.at_level(logging.DEBUG, logger="repro.obs.test"):
            log_event(logger, logging.DEBUG, "chaos.inject", fault="kill")
        record = caplog.records[0]
        assert record.event == "chaos.inject"
        assert record.event_fields == {"fault": "kill"}

    def test_no_fields_renders_bare_event(self, caplog):
        logger = get_logger("repro.obs.test")
        with caplog.at_level(logging.INFO, logger="repro.obs.test"):
            log_event(logger, logging.INFO, "pool.spawned")
        assert caplog.records[0].getMessage() == "pool.spawned"

    def test_disabled_level_short_circuits(self, caplog):
        logger = get_logger("repro.obs.test")
        with caplog.at_level(logging.WARNING, logger="repro.obs.test"):
            log_event(logger, logging.DEBUG, "round.cut", reason="x")
        assert not caplog.records
