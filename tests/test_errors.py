"""The unified error hierarchy: one base, historical names intact.

Every exception the package raises descends from
:class:`repro.errors.ReproError`, so ``except ReproError`` catches any
failure the library signals on purpose.  Two compatibility contracts ride
along: each pre-existing exception keeps its historical base (``ParseError``
is still a ``ValueError``, budget errors still ``RuntimeError``), and each
stays importable from the module that used to define it.
"""

import pickle

import pytest

from repro import errors
from repro.errors import (
    ChaseInterrupted,
    CheckpointError,
    DerivationError,
    ExtractionError,
    FairnessError,
    ParallelDiscoveryError,
    ParseError,
    ReproError,
    ResultIntegrityError,
    SearchBudgetExceeded,
    StateBudgetExceeded,
)

ALL_ERRORS = [
    ChaseInterrupted,
    CheckpointError,
    DerivationError,
    ExtractionError,
    FairnessError,
    ParallelDiscoveryError,
    ParseError,
    ResultIntegrityError,
    SearchBudgetExceeded,
    StateBudgetExceeded,
]

# (exception, historical module) — the aliased import paths that must keep
# working for code written before repro.errors existed.
HISTORICAL_HOMES = [
    (ParseError, "repro.core.parsing"),
    (DerivationError, "repro.chase.derivation"),
    (FairnessError, "repro.chase.fairness"),
    (SearchBudgetExceeded, "repro.chase.restricted"),
    (StateBudgetExceeded, "repro.automata.buchi"),
    (ExtractionError, "repro.sticky.extraction"),
]

# Exceptions that legacy code catches by a builtin type.
LEGACY_BASES = [
    (ParseError, ValueError),
    (DerivationError, ValueError),
    (ExtractionError, ValueError),
    (CheckpointError, ValueError),
    (FairnessError, RuntimeError),
    (SearchBudgetExceeded, RuntimeError),
    (StateBudgetExceeded, RuntimeError),
    (ResultIntegrityError, RuntimeError),
    (ParallelDiscoveryError, RuntimeError),
]


class TestHierarchy:
    @pytest.mark.parametrize("exc", ALL_ERRORS, ids=lambda e: e.__name__)
    def test_subclasses_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(ReproError, Exception)

    def test_blanket_except_clause_catches_everything(self):
        for exc in ALL_ERRORS:
            with pytest.raises(ReproError):
                raise exc("boom") if exc is not ChaseInterrupted else exc(
                    "budget:wall"
                )

    @pytest.mark.parametrize(
        "exc, base", LEGACY_BASES, ids=lambda x: getattr(x, "__name__", "")
    )
    def test_historical_builtin_bases_survive(self, exc, base):
        assert issubclass(exc, base)
        with pytest.raises(base):
            raise exc("boom")


class TestHistoricalImportPaths:
    @pytest.mark.parametrize(
        "exc, module_name", HISTORICAL_HOMES, ids=lambda x: str(x)
    )
    def test_alias_is_the_canonical_class(self, exc, module_name):
        module = __import__(module_name, fromlist=[exc.__name__])
        assert getattr(module, exc.__name__) is exc

    def test_package_root_exports(self):
        import repro

        for name in (
            "ReproError",
            "ChaseInterrupted",
            "CheckpointError",
            "ResultIntegrityError",
            "ParallelDiscoveryError",
            "ParseError",
            "DerivationError",
            "FairnessError",
            "SearchBudgetExceeded",
            "StateBudgetExceeded",
            "ExtractionError",
        ):
            assert getattr(repro, name) is getattr(errors, name)


class TestChaseInterrupted:
    def test_carries_reason_and_payloads(self):
        exc = ChaseInterrupted(
            "budget:atoms", checkpoint=None, instance=None, partial={"steps": 3}
        )
        assert exc.reason == "budget:atoms"
        assert exc.partial == {"steps": 3}
        assert "budget:atoms" in str(exc)

    def test_pickle_round_trip(self):
        exc = ChaseInterrupted("budget:wall", partial={"completed": 2, "total": 5})
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, ChaseInterrupted)
        assert clone.reason == "budget:wall"
        assert clone.partial == {"completed": 2, "total": 5}
