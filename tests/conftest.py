"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.parsing import parse_database
from repro.tgds.tgd import parse_tgds


@pytest.fixture
def intro_tgds():
    """The Section 1 intro example: ``R(x,y) → ∃z R(x,z)``."""
    return parse_tgds(["R(x,y) -> R(x,z)"])


@pytest.fixture
def intro_database():
    return parse_database("R(a,b)")


@pytest.fixture
def example_32_tgds():
    """Example 3.2: σ1..σ4 over P, R, S."""
    return parse_tgds(
        [
            "P(x,y) -> R(x,y)",
            "P(x,y) -> S(x)",
            "R(x,y) -> S(x)",
            "S(x) -> R(x,y)",
        ]
    )


@pytest.fixture
def example_32_database():
    return parse_database("P(a,b)")


@pytest.fixture
def example_56_tgds():
    """Example 5.6: remote-side-parent showcase."""
    return parse_tgds(
        [
            "S(x,y) -> T(x)",
            "R(x,y), T(y) -> P(x,y)",
            "P(x,y) -> P(y,z)",
        ]
    )


@pytest.fixture
def example_56_database():
    return parse_database("R(a,b), S(b,c)")


@pytest.fixture
def sticky_pair():
    """The Section 2 marking figures: (sticky set, non-sticky set)."""
    sticky = parse_tgds(["T(x,y,z) -> S(y,w)", "R(x,y), P(y,z) -> T(x,y,w)"])
    non_sticky = parse_tgds(["T(x,y,z) -> S(x,w)", "R(x,y), P(y,z) -> T(x,y,w)"])
    return sticky, non_sticky


@pytest.fixture
def diverging_linear():
    """``R(x,y) → ∃z R(y,z)``: diverges on every non-empty R database."""
    return parse_tgds(["R(x,y) -> R(y,z)"])
