"""Data exchange with the restricted chase (the classic application [13]).

A source schema (Emp, Mgr) is mapped to a target schema (Worker, Team,
ReportsTo) by weakly-acyclic source-to-target and target TGDs.  The chase
computes a *universal solution*; conjunctive queries evaluated over it with
null-free answers give exactly the certain answers.

Run:  python examples/data_exchange.py
"""

from repro import (
    ConjunctiveQuery,
    is_weakly_acyclic,
    parse_database,
    parse_tgds,
    restricted_chase,
)


def main() -> None:
    # Source-to-target dependencies: every employee becomes a worker on some
    # team; management transfers to reporting between the workers.
    mapping = parse_tgds(
        [
            "Emp(e) -> Worker(e)",
            "Worker(e) -> Team(e,t)",
            "Mgr(e,m) -> ReportsTo(e,m)",
            "ReportsTo(e,m) -> Worker(m)",
        ]
    )
    assert is_weakly_acyclic(mapping), "the mapping is weakly acyclic by design"

    source = parse_database(
        "Emp(ann), Emp(bob), Emp(cid), Mgr(ann,bob), Mgr(bob,cid)"
    )

    print("== Source instance ==")
    for atom in source.sorted_atoms():
        print(f"  {atom}")

    result = restricted_chase(source, mapping)
    assert result.terminated
    print(f"\n== Universal solution ({result.steps} chase steps) ==")
    for atom in result.instance.sorted_atoms():
        print(f"  {atom}")

    print("\n== Certain answers ==")
    queries = [
        ConjunctiveQuery.parse("Workers(w) :- Worker(w)"),
        ConjunctiveQuery.parse("Chain(e,m2) :- ReportsTo(e,m), ReportsTo(m,m2)"),
        ConjunctiveQuery.parse("Teamed(e,t) :- Team(e,t)"),
    ]
    for query in queries:
        certain = sorted(query.certain_answers(result.instance), key=repr)
        print(f"  {query}")
        print(f"    certain: {certain}")
        if query.name == "Teamed":
            all_answers = query.evaluate(result.instance)
            print(
                f"    (of {len(all_answers)} answers over the universal "
                "solution — team ids are invented nulls, hence not certain)"
            )


if __name__ == "__main__":
    main()
