"""The Fairness Theorem, live (Section 4 + Appendix B.1).

Part 1 — single-head TGDs: a LIFO strategy starves a trigger forever
(an *unfair* infinite derivation); the Theorem 4.1 construction splices the
starved trigger in at a safe index, producing a fair derivation.

Part 2 — multi-head TGDs: Example B.1, where the theorem *fails*: an
infinite derivation exists, but every fair derivation is finite.

Run:  python examples/fairness_demo.py
"""

from repro import parse_database, parse_tgds
from repro.chase.fairness import (
    derivation_prefix,
    everlasting_triggers,
    is_fair_up_to,
    make_fair,
)
from repro.chase.multihead import example_b1_tgds, multihead_restricted_chase


def part1_single_head() -> None:
    print("== Part 1: Theorem 4.1 on single-head TGDs ==")
    tgds = parse_tgds(["R(x,y) -> R(y,z)", "A(x) -> B(x)"])
    database = parse_database("R(a,b), A(a)")
    print("TGDs:", [repr(t) for t in tgds])

    prefix = derivation_prefix(database, tgds, "lifo", length=12)
    print(f"\nLIFO prefix applies: {[t.tgd.name for t in prefix.steps]}")
    starving = everlasting_triggers(prefix, tgds)
    print(f"starved triggers: {[(m, t.tgd.name) for m, t in starving]}")
    print(f"fair up to horizon? {is_fair_up_to(prefix, tgds)}")

    fair = make_fair(prefix, tgds)
    print(f"\nafter the construction: {[t.tgd.name for t in fair.steps]}")
    print(f"fair up to horizon? {is_fair_up_to(fair, tgds, horizon=6)}")
    fair.validate(tgds)
    print("the repaired derivation re-validates step by step ✓")


def part2_multi_head() -> None:
    print("\n== Part 2: Example B.1 — multi-head TGDs break the theorem ==")
    tgds = example_b1_tgds()
    for tgd in tgds:
        print(f"  {tgd}")
    database = parse_database("R(a,b,b)")

    unfair = multihead_restricted_chase(database, tgds, strategy=0, max_steps=12)
    print(f"\nalways applying the first TGD: {unfair.steps} steps, still going")

    fair_obligation = parse_database("R(a,b,b), R(b,b,b)")
    finished = multihead_restricted_chase(fair_obligation, tgds, strategy="fifo", max_steps=50)
    print(
        "fairness forces adding R(b,b,b) (deactivating the second TGD's "
        f"trigger), after which the chase terminates: {finished.terminated} "
        f"in {finished.steps} steps"
    )
    print(
        "=> an infinite derivation exists, but no fair infinite one — "
        "exactly why the paper restricts to single-head TGDs."
    )


if __name__ == "__main__":
    part1_single_head()
    part2_multi_head()
