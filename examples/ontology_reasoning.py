"""Ontological query answering with guarded TGDs (the setting of [2,7,8]).

A small "organization" ontology written as guarded single-head TGDs is
materialized with the restricted chase; before trusting materialization we
ask the termination analyzer whether the chase is guaranteed to terminate
for *every* database — the paper's CT_res_∀∀ question.

Run:  python examples/ontology_reasoning.py
"""

from repro import (
    ConjunctiveQuery,
    TerminationAnalyzer,
    is_guarded,
    parse_database,
    parse_tgds,
    restricted_chase,
)


def main() -> None:
    ontology = parse_tgds(
        [
            # Every professor is a researcher holding some position.
            "Professor(p) -> Researcher(p)",
            "Researcher(r) -> Holds(r,q)",
            # Supervision happens inside a common department.
            "Supervises(s,t) -> Researcher(t)",
            "Supervises(s,t) -> Researcher(s)",
            # A held position makes its holder employed.
            "Holds(r,q) -> Employed(r)",
        ]
    )
    assert is_guarded(ontology)

    print("== Ontology ==")
    for tgd in ontology:
        print(f"  {tgd}")

    analyzer = TerminationAnalyzer()
    verdict = analyzer.analyze(ontology)
    print(f"\nCT_res_∀∀ verdict: {verdict.status} (via {verdict.method})")
    assert verdict.is_terminating, "materialization is safe for every database"

    data = parse_database(
        "Professor(turing), Supervises(turing,good), Supervises(good,michie)"
    )
    result = restricted_chase(data, ontology)
    print(f"\n== Materialization ({result.steps} steps) ==")
    for atom in result.instance.sorted_atoms():
        print(f"  {atom}")

    print("\n== Queries over the materialization ==")
    for text in (
        "Q1(r) :- Researcher(r)",
        "Q2(r) :- Employed(r)",
        "Q3(s,t) :- Supervises(s,t), Employed(s)",
    ):
        query = ConjunctiveQuery.parse(text)
        answers = sorted(query.certain_answers(result.instance), key=repr)
        print(f"  {query} -> {answers}")

    print("\n== A dangerous extension ==")
    extended = ontology + parse_tgds(
        ["Holds(r,q) -> Supervises(q,s)"]  # positions start supervising...
    )
    risky = analyzer.analyze(extended)
    print(f"extended ontology verdict: {risky.status} (via {risky.method})")
    if risky.is_nonterminating:
        witness = risky.certificate["witness"]
        print(f"  witness database: {sorted(map(repr, witness.initial))}")
        print("  -> materialization must NOT be attempted on this ontology")


if __name__ == "__main__":
    main()
