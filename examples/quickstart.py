"""Quickstart: parse TGDs, run the chase, decide termination.

Reproduces the paper's Section 1 motivating example and shows the three
entry points most users need: the restricted chase, the oblivious chase,
and the all-instances termination analyzer.

Run:  python examples/quickstart.py
"""

from repro import (
    TerminationAnalyzer,
    oblivious_chase,
    parse_database,
    parse_tgds,
    restricted_chase,
)


def main() -> None:
    # The Section 1 example: the TGD is already satisfied by the database.
    tgds = parse_tgds(["R(x,y) -> R(x,z)"])
    database = parse_database("R(a,b)")

    print("== Restricted (standard) chase ==")
    restricted = restricted_chase(database, tgds)
    print(f"terminated: {restricted.terminated} after {restricted.steps} steps")
    print(f"instance:   {restricted.instance.sorted_atoms()}")

    print("\n== Oblivious chase (bounded) ==")
    oblivious = oblivious_chase(database, tgds, max_atoms=10, max_rounds=10)
    print(f"terminated: {oblivious.terminated}")
    print(f"instance grew to {len(oblivious.instance)} atoms before the cut-off:")
    for atom in sorted(oblivious.instance.sorted_atoms(), key=repr)[:5]:
        print(f"  {atom}")
    print("  ... (the oblivious chase of this input is infinite)")

    print("\n== All-instances restricted chase termination ==")
    analyzer = TerminationAnalyzer()
    for rules in (
        ["R(x,y) -> R(x,z)"],            # terminating (the example above)
        ["R(x,y) -> R(y,z)"],            # diverging shift chain
        ["P(x) -> Q(x,y)", "Q(x,y) -> S(y)"],  # weakly acyclic
    ):
        tgd_set = parse_tgds(rules)
        verdict = analyzer.analyze(tgd_set)
        print(f"{rules!r:60} -> {verdict.status} (via {verdict.method})")
        if verdict.is_nonterminating:
            witness = verdict.certificate["witness"]
            print(f"   witness database: {witness.initial.sorted_atoms()}")


if __name__ == "__main__":
    main()
