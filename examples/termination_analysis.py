"""Corpus-scale termination analysis (the exhibit X10 'table').

Generates reproducible corpora of linear / guarded / sticky /
weakly-acyclic TGD sets, runs the umbrella analyzer on each, and prints the
verdict tally per family together with the methods that produced them.

Run:  python examples/termination_analysis.py
"""

from collections import Counter

from repro import Status, TerminationAnalyzer
from repro.tgds.generators import GeneratorProfile, corpus


def main() -> None:
    analyzer = TerminationAnalyzer(guarded_max_steps=40)
    profile = GeneratorProfile(
        num_predicates=3, max_arity=2, num_tgds=2, existential_probability=0.6
    )
    families = ["linear", "sticky", "guarded", "weakly-acyclic"]
    size = 12

    print(f"{'family':<16} {'terminating':>12} {'diverging':>10} {'unknown':>8}")
    print("-" * 50)
    method_tally: Counter = Counter()
    for family in families:
        sets = corpus(family, size, base_seed=100, profile=profile)
        counts = Counter()
        for tgds in sets:
            verdict = analyzer.analyze(tgds)
            counts[verdict.status] += 1
            method_tally[verdict.method] += 1
        print(
            f"{family:<16} {counts[Status.ALL_TERMINATING]:>12} "
            f"{counts[Status.NOT_ALL_TERMINATING]:>10} "
            f"{counts[Status.UNKNOWN]:>8}"
        )

    print("\nDecision methods used:")
    for method, count in method_tally.most_common():
        print(f"  {method:<28} {count}")

    print(
        "\nNotes: the sticky route is the complete Büchi procedure of "
        "Theorem 6.1; weak/joint acyclicity and the critical-database "
        "oblivious check are sound certificates; 'unknown' is only "
        "reported outside the decidable classes or past search bounds."
    )


if __name__ == "__main__":
    main()
