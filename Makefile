PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-quick bench-exhibits

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) benchmarks/harness.py

bench-quick:
	$(PYTHON) benchmarks/harness.py --quick

# The per-exhibit pytest-benchmark suites (X1-X12 + ablations).
bench-exhibits:
	cd benchmarks && PYTHONPATH=../src $(PYTHON) -m pytest bench_*.py -q
