PYTHON ?= python

# Put src first on PYTHONPATH, composing with (not clobbering) whatever the
# caller already set — in the environment or on the make command line
# (`override` is what keeps a command-line value from defeating the
# composition).
ifeq ($(origin PYTHONPATH), undefined)
export PYTHONPATH := src
else
export override PYTHONPATH := src:$(PYTHONPATH)
endif

#: Pool width forwarded to benchmarks/harness.py --workers (the parallel
#: discovery gate is defined at 4).
WORKERS ?= 4

#: Coverage floor (percent) enforced on src/repro/chase/ by `make coverage`.
COVERAGE_FLOOR ?= 80

#: Seed for the fault-injection suite (`make test-chaos`); any value works,
#: the point is that a failing run is reproducible from the seed alone.
CHAOS_SEED ?= 1307

#: Bind address / port for `make serve` (PORT=0 binds an ephemeral port).
HOST ?= 127.0.0.1
PORT ?= 8080

#: Parallel chase workers per session round for `make serve` (1 = serial).
SERVE_WORKERS ?= 1

.PHONY: test test-chaos lint bench bench-quick bench-gate bench-exhibits coverage stats docs-check serve bench-service

test:
	$(PYTHON) -m pytest -x -q

# The fault-injection suite: the chaos harness's own tests, then the
# parallel-equivalence and checkpoint property suites with every
# pool-backed chase routed through ChaosMatcher (CHASE_CHAOS_SEED set).
# Results must stay byte-identical to serial runs despite injected worker
# kills, delays, and corrupted results; see docs/CI.md.
test-chaos:
	$(PYTHON) -m pytest tests/chase/test_chaos.py -x -q
	CHASE_CHAOS_SEED=$(CHAOS_SEED) $(PYTHON) -m pytest \
		tests/chase/test_parallel.py tests/chase/test_checkpoint.py -x -q

# Ruff (config in pyproject.toml).  The offline dev container does not ship
# ruff; skip with a note there instead of failing — CI installs it and gets
# the real check.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check .; \
	else \
		echo "ruff not installed; skipping lint (CI runs it)"; \
	fi

bench:
	$(PYTHON) benchmarks/harness.py --workers $(WORKERS)

bench-quick:
	$(PYTHON) benchmarks/harness.py --quick --workers $(WORKERS)

# Gate on the trajectory the harness wrote (see docs/CI.md for the knobs).
bench-gate:
	$(PYTHON) benchmarks/check_regression.py

# The per-exhibit pytest-benchmark suites (X1-X12 + ablations).
bench-exhibits:
	cd benchmarks && PYTHONPATH=../src $(PYTHON) -m pytest bench_*.py -q

# Broken intra-repo markdown links in docs/*.md and the top-level *.md
# files (stdlib-only checker; the CI docs job and a tier-1 test run the
# same thing).
docs-check:
	$(PYTHON) tools/check_doc_links.py

# The chase service: long-lived sessions with incremental resume and a
# digest-keyed verdict cache over a stdlib asyncio HTTP front end.  See
# docs/SERVICE.md for the endpoint reference.
serve:
	$(PYTHON) -m repro.service --host $(HOST) --port $(PORT) \
		--workers $(SERVE_WORKERS)

# The service load bench + equivalence gate, standalone (the same section
# `make bench`/`make bench-quick` folds into BENCH_chase.json).
bench-service:
	$(PYTHON) benchmarks/bench_service.py --quick

# Per-workload telemetry summary of the last bench report (rounds,
# trigger accounting, cache hit rate, pool efficiency); run `make bench`
# or `make bench-quick` first.  See docs/OBSERVABILITY.md.
stats:
	$(PYTHON) -m repro.obs.report BENCH_chase.json

# Tier-1 under coverage.py with an enforced floor on the chase kernel
# (src/repro/chase/) and an HTML report in htmlcov/.  The offline dev
# container does not ship coverage; skip with a note there instead of
# failing — CI installs it and enforces the floor (docs/CI.md).
coverage:
	@if $(PYTHON) -m coverage --version >/dev/null 2>&1; then \
		$(PYTHON) -m coverage run --source=src/repro -m pytest -x -q && \
		$(PYTHON) -m coverage html -d htmlcov && \
		$(PYTHON) -m coverage report --include='src/repro/chase/*' \
			--fail-under=$(COVERAGE_FLOOR); \
	else \
		echo "coverage not installed; skipping (CI enforces the floor)"; \
	fi
